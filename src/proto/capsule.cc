#include "proto/capsule.h"

#include <cstring>

namespace draid::proto {

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::kRead: return "Read";
      case Opcode::kWrite: return "Write";
      case Opcode::kPartialWrite: return "PartialWrite";
      case Opcode::kParity: return "Parity";
      case Opcode::kReconstruction: return "Reconstruction";
      case Opcode::kPeer: return "Peer";
      case Opcode::kCompletion: return "Completion";
    }
    return "Unknown";
}

const char *
toString(Subtype st)
{
    switch (st) {
      case Subtype::kNone: return "None";
      case Subtype::kRmw: return "RMW";
      case Subtype::kRwWrite: return "RW_WRITE";
      case Subtype::kRwRead: return "RW_READ";
      case Subtype::kNoRead: return "NoRead";
      case Subtype::kAlsoRead: return "AlsoRead";
      case Subtype::kDegraded: return "Degraded";
      case Subtype::kNoReadQ: return "NoReadQ";
    }
    return "Unknown";
}

const char *
toString(Status st)
{
    switch (st) {
      case Status::kSuccess: return "Success";
      case Status::kFailed: return "Failed";
      case Status::kTimedOut: return "TimedOut";
    }
    return "Unknown";
}

namespace {

constexpr std::uint32_t kMagic = 0x64524149; // "dRAI"
constexpr std::uint32_t kFixedSize = 64;     // header + fixed fields
constexpr std::uint32_t kSgeSize = 12;

void
put8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
put16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool
    read8(std::uint8_t &v)
    {
        if (pos_ + 1 > size_)
            return false;
        v = data_[pos_++];
        return true;
    }

    bool
    read16(std::uint16_t &v)
    {
        if (pos_ + 2 > size_)
            return false;
        v = static_cast<std::uint16_t>(data_[pos_] |
                                       (data_[pos_ + 1] << 8));
        pos_ += 2;
        return true;
    }

    bool
    read32(std::uint32_t &v)
    {
        if (pos_ + 4 > size_)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    read64(std::uint64_t &v)
    {
        if (pos_ + 8 > size_)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return true;
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace

std::uint32_t
Capsule::wireSize() const
{
    return kFixedSize +
           kSgeSize * static_cast<std::uint32_t>(sgList.size() +
                                                 sgList2.size());
}

std::vector<std::uint8_t>
Capsule::encode() const
{
    std::vector<std::uint8_t> out;
    out.reserve(wireSize());
    put32(out, kMagic);
    put64(out, commandId);
    put8(out, static_cast<std::uint8_t>(opcode));
    put8(out, static_cast<std::uint8_t>(subtype));
    put8(out, static_cast<std::uint8_t>(status));
    put8(out, 0); // reserved
    put32(out, nsid);
    put64(out, offset);
    put32(out, length);
    put32(out, fwdOffset);
    put32(out, fwdLength);
    put32(out, nextDest);
    put32(out, nextDest2);
    put16(out, waitNum);
    put16(out, dataIdx);
    put64(out, stripe);
    put16(out, static_cast<std::uint16_t>(sgList.size()));
    put16(out, static_cast<std::uint16_t>(sgList2.size()));
    for (const auto *list : {&sgList, &sgList2}) {
        for (const auto &sge : *list) {
            put64(out, sge.addr);
            put32(out, sge.length);
        }
    }
    return out;
}

std::optional<Capsule>
Capsule::decode(const std::uint8_t *data, std::size_t size)
{
    Reader r(data, size);
    std::uint32_t magic = 0;
    if (!r.read32(magic) || magic != kMagic)
        return std::nullopt;

    Capsule c;
    std::uint8_t op = 0, st = 0, status = 0, reserved = 0;
    std::uint16_t num_sge = 0, num_sge2 = 0;
    if (!r.read64(c.commandId) || !r.read8(op) || !r.read8(st) ||
        !r.read8(status) || !r.read8(reserved) || !r.read32(c.nsid) ||
        !r.read64(c.offset) || !r.read32(c.length) ||
        !r.read32(c.fwdOffset) || !r.read32(c.fwdLength) ||
        !r.read32(c.nextDest) || !r.read32(c.nextDest2) ||
        !r.read16(c.waitNum) || !r.read16(c.dataIdx) ||
        !r.read64(c.stripe) || !r.read16(num_sge) || !r.read16(num_sge2)) {
        return std::nullopt;
    }
    c.opcode = static_cast<Opcode>(op);
    c.subtype = static_cast<Subtype>(st);
    c.status = static_cast<Status>(status);
    for (std::uint16_t i = 0; i < num_sge + num_sge2; ++i) {
        Sge sge;
        if (!r.read64(sge.addr) || !r.read32(sge.length))
            return std::nullopt;
        if (i < num_sge)
            c.sgList.push_back(sge);
        else
            c.sgList2.push_back(sge);
    }
    return c;
}

} // namespace draid::proto
