/**
 * @file
 * The dRAID command capsule: an NVMe-oF command capsule extended with the
 * fields of Figure 5 (subtype, fwd-offset/length, next-dest, wait-num, and
 * the RAID-6 extras next-dest2 / data-idx / second SG list).
 *
 * Capsules have a defined wire encoding so the protocol layer can be tested
 * for round-trip fidelity; inside the simulation the struct is passed
 * directly and only its wireSize() is charged to the fabric.
 */

#ifndef DRAID_PROTO_CAPSULE_H
#define DRAID_PROTO_CAPSULE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/opcodes.h"
#include "sim/types.h"

namespace draid::proto {

/** One scatter-gather element (remote address + length). */
struct Sge
{
    std::uint64_t addr = 0;
    std::uint32_t length = 0;

    bool operator==(const Sge &) const = default;
};

/** An extended NVMe-oF command capsule. */
struct Capsule
{
    // --- standard NVMe-oF command fields ---
    std::uint64_t commandId = 0; ///< host-assigned operation tag
    Opcode opcode = Opcode::kRead;
    std::uint32_t nsid = 0;      ///< namespace = member-device index
    std::uint64_t offset = 0;    ///< device byte offset of the chunk I/O
    std::uint32_t length = 0;    ///< device byte length of the chunk I/O

    // --- dRAID command parameters (§4) ---
    Subtype subtype = Subtype::kNone;
    std::uint32_t fwdOffset = 0;  ///< offset of the forwarded segment
    std::uint32_t fwdLength = 0;  ///< length of the forwarded segment
    sim::NodeId nextDest = sim::kInvalidNode; ///< partial-parity destination
    std::uint16_t waitNum = 0;    ///< partial results the reducer expects

    // --- other command data, dedicated to RAID-6 (§4) ---
    sim::NodeId nextDest2 = sim::kInvalidNode; ///< Q-parity destination
    std::uint16_t dataIdx = 0;    ///< chunk index (selects the Q coefficient)

    /** Scatter-gather lists for P- and Q-bound data. */
    // draid-lint: cap(SGEs of one command; at most stripe width)
    std::vector<Sge> sgList;
    // draid-lint: cap(SGEs of one command; at most stripe width)
    std::vector<Sge> sgList2;

    // --- reduce bookkeeping ---
    std::uint64_t stripe = 0;     ///< stripe id; the reduce grouping key

    // --- completion ---
    Status status = Status::kSuccess;

    // --- simulation metadata (not part of the wire format) ---
    /**
     * Telemetry trace id minted at the array entry point; 0 when tracing
     * is off. Deliberately excluded from wireSize()/encode() so enabling
     * tracing cannot change the bytes charged to the fabric.
     */
    std::uint64_t traceId = 0;

    /**
     * Owning tenant (ContentionTracker id) stamped at the array entry
     * point; 0 = untracked. Simulation metadata like traceId: excluded
     * from wireSize()/encode() so the tenant dimension never changes the
     * bytes charged to the fabric.
     */
    std::uint32_t tenant = 0;

    bool operator==(const Capsule &) const = default;

    /** Bytes this capsule occupies on the wire. */
    std::uint32_t wireSize() const;

    /** Serialize to the defined little-endian wire format. */
    std::vector<std::uint8_t> encode() const;

    /** Parse a capsule; nullopt on malformed input. */
    static std::optional<Capsule> decode(const std::uint8_t *data,
                                         std::size_t size);
};

} // namespace draid::proto

#endif // DRAID_PROTO_CAPSULE_H
