/**
 * @file
 * dRAID protocol opcodes and subtypes (paper §4, Figure 5).
 *
 * The protocol is a compatible extension of NVMe-oF: standard Read/Write
 * plus four dRAID operations. Subtypes select behaviour within an opcode
 * (write mode for PartialWrite/Parity, read role for Reconstruction).
 */

#ifndef DRAID_PROTO_OPCODES_H
#define DRAID_PROTO_OPCODES_H

#include <cstdint>

namespace draid::proto {

/** Command opcodes. The last four are dRAID extensions. */
enum class Opcode : std::uint8_t
{
    kRead = 0x02,           ///< standard NVMe-oF read
    kWrite = 0x01,          ///< standard NVMe-oF write
    kPartialWrite = 0x81,   ///< host -> bdevD: write data, emit partial parity
    kParity = 0x82,         ///< host -> bdevP/Q: collect and reduce parities
    kReconstruction = 0x83, ///< host -> bdev: degraded-read participation
    kPeer = 0x84,           ///< bdev -> bdev: partial result available
    kCompletion = 0xf0,     ///< target -> host: final status of an operation
};

/** Behaviour selector within an opcode. */
enum class Subtype : std::uint8_t
{
    kNone = 0,
    // PartialWrite / Parity write modes (§5.1, Algorithm 1).
    kRmw = 1,     ///< read-modify-write: delta against old data
    kRwWrite = 2, ///< reconstruct write, chunk receives new data
    kRwRead = 3,  ///< reconstruct write, untouched chunk read whole
    // Reconstruction roles (§6.1, Figure 8).
    kNoRead = 4,   ///< chunk only needed for reconstruction
    kAlsoRead = 5, ///< chunk also requested by the read I/O
    // Degraded-write participation: chunk must be reconstructed before
    // the stripe's parity can be updated.
    kDegraded = 6,
    // Q-parity rebuild: contribute the chunk premultiplied by g^data-idx
    // (RAID-6 "other command data" path, §4).
    kNoReadQ = 7,
};

/** Final status of a command (§5.4: success / failed / timed out). */
enum class Status : std::uint8_t
{
    kSuccess = 0,
    kFailed = 1,
    kTimedOut = 2,
};

/** Printable names (diagnostics and tests). */
const char *toString(Opcode op);
const char *toString(Subtype st);
const char *toString(Status st);

} // namespace draid::proto

#endif // DRAID_PROTO_OPCODES_H
