#include "baselines/host_raid.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <utility>

#include "telemetry/trace.h"

#include "ec/gf256.h"
#include "ec/raid5_codec.h"
#include "ec/raid6_codec.h"
#include "ec/xor_kernel.h"

namespace draid::baselines {

HostCentricRaid::HostCentricRaid(cluster::Cluster &cluster,
                                 raid::RaidLevel level,
                                 std::uint32_t chunk_size,
                                 std::uint32_t width,
                                 const HostRaidTuning &tuning)
    : cluster_(cluster),
      tuning_(tuning),
      width_(width == 0 ? cluster.numTargets() : width),
      geom_(level, chunk_size, width_),
      planner_(geom_),
      initiator_(cluster, ids_)
{
    assert(width_ <= cluster.numTargets());
    cluster_.fabric().setEndpoint(cluster_.hostId(), this);
    for (std::uint32_t i = 0; i < cluster.numTargets(); ++i) {
        targets_.push_back(
            std::make_unique<blockdev::NvmfTarget>(cluster, i));
    }

    // Probes over the existing counters plus op-latency histograms, under
    // host0.raid.* (one system under test per cluster).
    auto scope = cluster_.nodeScope(cluster_.hostId()).scope("raid");
    scope.probe("full_stripe_writes",
                [this] { return counters_.fullStripeWrites; });
    scope.probe("rmw_writes", [this] { return counters_.rmwWrites; });
    scope.probe("rcw_writes", [this] { return counters_.rcwWrites; });
    scope.probe("normal_reads", [this] { return counters_.normalReads; });
    scope.probe("degraded_reads",
                [this] { return counters_.degradedReads; });
    scope.probe("degraded_writes",
                [this] { return counters_.degradedWrites; });
    scope.probe("retries", [this] { return counters_.retries; });
    readLatencyUs_ =
        &scope.histogram("read_latency_us", telemetry::latencyBucketsUs());
    writeLatencyUs_ =
        &scope.histogram("write_latency_us", telemetry::latencyBucketsUs());
}

void
HostCentricRaid::finishOpSpan(std::uint64_t trace, const char *name,
                              sim::Ticks start, std::uint64_t bytes,
                              telemetry::Histogram *lat_us)
{
    const sim::Ticks end = cluster_.sim().now();
    if (lat_us)
        lat_us->observe(static_cast<double>((end - start).raw()) /
                        sim::kMicrosecond);
    telemetry::ContentionTracker &ct = cluster_.telemetry().contention();
    const std::uint32_t tenant = ct.tenantOf(trace);
    if (ct.enabled())
        ct.noteOpComplete(trace, end.raw(), (end - start).raw(), bytes);
    telemetry::Tracer &tracer = cluster_.tracer();
    if (trace == 0 || !tracer.active())
        return;
    telemetry::TraceSpan span;
    span.traceId = trace;
    span.node = cluster_.hostId();
    span.lane = "op";
    span.name = name;
    span.start = start.raw();
    span.end = end.raw();
    span.tenant = tenant;
    span.args.emplace_back("bytes", std::to_string(bytes));
    // Root op span: routes through the op-completion path (streaming
    // aggregator sink + tail-exemplar reservoir) before retention.
    tracer.recordOpCompletion(std::move(span));
}

std::uint64_t
HostCentricRaid::sizeBytes() const
{
    const std::uint64_t stripes =
        cluster_.config().ssd.capacity / geom_.chunkSize();
    return stripes * geom_.stripeDataSize();
}

void
HostCentricRaid::onMessage(const net::Message &msg)
{
    initiator_.tryComplete(msg);
}

void
HostCentricRaid::markFailed(std::uint32_t device)
{
    assert(device < width_);
    failed_ = device;
}

void
HostCentricRaid::chargeDataPath(std::uint64_t bytes, sim::EventFn fn,
                                std::uint64_t trace)
{
    cluster_.host().cpu().executeBytes(bytes, tuning_.dataPathBw, sim::Ticks::zero(), trace,
                                       "host.datapath", std::move(fn));
}

void
HostCentricRaid::chargeReadPath(std::uint64_t bytes, sim::EventFn fn,
                                std::uint64_t trace)
{
    cluster_.host().cpu().executeBytes(bytes, tuning_.readPathBw, sim::Ticks::zero(), trace,
                                       "host.readpath", std::move(fn));
}

void
HostCentricRaid::chargeXor(std::uint64_t bytes, sim::EventFn fn,
                           std::uint64_t trace)
{
    cluster_.host().cpu().executeBytes(bytes, tuning_.xorBw, sim::Ticks::zero(), trace,
                                       "parity.xor", std::move(fn));
}

void
HostCentricRaid::chargeGf(std::uint64_t bytes, sim::EventFn fn,
                          std::uint64_t trace)
{
    cluster_.host().cpu().executeBytes(bytes, tuning_.gfBw, sim::Ticks::zero(), trace,
                                       "parity.gf", std::move(fn));
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

namespace {

struct WriteTally
{
    int remaining = 0;
    bool ok = true;
    std::optional<std::uint32_t> suspect;
};

} // namespace

void
HostCentricRaid::write(std::uint64_t offset, ec::Buffer data,
                       blockdev::WriteCallback cb)
{
    assert(offset + data.size() <= sizeBytes());
    const std::uint64_t trace = cluster_.tracer().mint();
    cluster_.telemetry().contention().noteOpStart(trace);
    const sim::Ticks op_start = cluster_.sim().now();
    const std::uint64_t op_bytes = data.size();
    auto wrapped = [this, cb, trace, op_start,
                    op_bytes](blockdev::IoStatus st) {
        finishOpSpan(trace, "raid.write", op_start, op_bytes,
                     writeLatencyUs_);
        cb(st);
    };
    auto plans = planner_.plan(offset, data.size());
    auto remaining = std::make_shared<int>(static_cast<int>(plans.size()));
    auto all_ok = std::make_shared<bool>(true);

    // Kernel-path submission overhead (queue delay + per-op CPU).
    auto submit = [this, plans = std::move(plans), data, remaining, all_ok,
                   wrapped, trace]() mutable {
        std::size_t pos = 0;
        for (auto &plan : plans) {
            auto sw = std::make_shared<StripeWrite>();
            sw->plan = plan;
            sw->retriesLeft = tuning_.maxRetries;
            sw->traceId = trace;
            for (const auto &seg : plan.writes) {
                sw->segData.push_back(data.slice(pos, seg.length));
                pos += seg.length;
            }
            const std::uint64_t stripe = plan.stripe;
            sw->done = [this, stripe, remaining, all_ok,
                        wrapped](bool ok) {
                locks_.release(stripe);
                if (!ok)
                    *all_ok = false;
                if (--*remaining == 0)
                    wrapped(*all_ok ? blockdev::IoStatus::kOk
                                    : blockdev::IoStatus::kError);
            };
            locks_.acquire(stripe,
                           [this, sw]() { executeStripeWrite(sw); });
        }
    };

    cluster_.sim().schedule(tuning_.queueDelay, "hostraid.queue",
                            [this, submit, trace]() mutable {
        cluster_.host().cpu().execute(tuning_.perOpCost + tuning_.lockCost,
                                      trace, "host.submit",
                                      std::move(submit));
    });
}

void
HostCentricRaid::executeStripeWrite(std::shared_ptr<StripeWrite> sw)
{
    const std::uint64_t stripe = sw->plan.stripe;

    if (!failed_) {
        switch (sw->plan.mode) {
          case raid::WriteMode::kFullStripe:
            doFullStripe(sw);
            return;
          case raid::WriteMode::kReadModifyWrite:
            doRmw(sw);
            return;
          case raid::WriteMode::kReconstructWrite:
            doRcw(sw, std::nullopt);
            return;
        }
    }

    ++counters_.degradedWrites;
    const raid::ChunkRole role = geom_.roleOf(stripe, *failed_);
    if (role == raid::ChunkRole::kParityP &&
        geom_.level() == raid::RaidLevel::kRaid5) {
        doParityLess(sw);
        return;
    }
    if (role != raid::ChunkRole::kData) {
        // One parity lost; the normal flow skips it.
        switch (sw->plan.mode) {
          case raid::WriteMode::kFullStripe:
            doFullStripe(sw);
            return;
          case raid::WriteMode::kReadModifyWrite:
            doRmw(sw);
            return;
          case raid::WriteMode::kReconstructWrite:
            doRcw(sw, std::nullopt);
            return;
        }
    }

    const std::uint32_t fidx = geom_.dataIndexOf(stripe, *failed_);
    const auto written =
        std::find_if(sw->plan.writes.begin(), sw->plan.writes.end(),
                     [fidx](const raid::WriteSegment &s) {
                         return s.dataIdx == fidx;
                     });
    if (sw->plan.mode == raid::WriteMode::kFullStripe) {
        doFullStripe(sw);
        return;
    }
    if (written == sw->plan.writes.end()) {
        // Untouched failed chunk cancels out of the delta: force RMW.
        auto &plan = sw->plan;
        plan.mode = raid::WriteMode::kReadModifyWrite;
        plan.rcwReads.clear();
        std::uint32_t lo = geom_.chunkSize(), hi = 0;
        for (const auto &s : plan.writes) {
            lo = std::min(lo, s.offset);
            hi = std::max(hi, s.offset + s.length);
        }
        plan.parityOffset = lo;
        plan.parityLength = hi - lo;
        doRmw(sw);
        return;
    }
    // Peel the failed chunk's segment off: surviving segments go through
    // an ordinary RMW sub-op, then the failed segment updates the parity
    // window directly from the survivors' slices (no reconstruction
    // round-trip — the same targeted path dRAID uses, only host-centric).
    const raid::WriteSegment failed_seg = *written;
    const std::size_t seg_pos =
        static_cast<std::size_t>(written - sw->plan.writes.begin());
    ec::Buffer failed_data = sw->segData[seg_pos];
    sw->plan.writes.erase(written);
    sw->segData.erase(sw->segData.begin() +
                      static_cast<std::ptrdiff_t>(seg_pos));

    if (sw->plan.writes.empty()) {
        doDegradedTargeted(sw, failed_seg, std::move(failed_data));
        return;
    }
    auto phase1 = std::make_shared<StripeWrite>();
    phase1->plan = sw->plan;
    phase1->plan.mode = raid::WriteMode::kReadModifyWrite;
    phase1->plan.rcwReads.clear();
    std::uint32_t lo = geom_.chunkSize(), hi = 0;
    for (const auto &s : phase1->plan.writes) {
        lo = std::min(lo, s.offset);
        hi = std::max(hi, s.offset + s.length);
    }
    phase1->plan.parityOffset = lo;
    phase1->plan.parityLength = hi - lo;
    phase1->segData = sw->segData;
    phase1->retriesLeft = sw->retriesLeft;
    phase1->done = [this, sw, failed_seg,
                    failed_data = std::move(failed_data)](bool ok) mutable {
        if (!ok) {
            sw->done(false);
            return;
        }
        doDegradedTargeted(sw, failed_seg, std::move(failed_data));
    };
    doRmw(phase1);
}

void
HostCentricRaid::doDegradedTargeted(std::shared_ptr<StripeWrite> sw,
                                    const raid::WriteSegment &seg,
                                    ec::Buffer data)
{
    const std::uint64_t stripe = sw->plan.stripe;
    const std::uint32_t fidx = seg.dataIdx;
    const bool raid6 = geom_.level() == raid::RaidLevel::kRaid6;
    const std::uint64_t addr = geom_.deviceAddress(stripe, seg.offset);

    struct Ctx
    {
        // draid-lint: cap(stripe width; one slice per parity update)
        std::vector<std::pair<std::uint32_t, ec::Buffer>> slices;
        int remaining = 0;
        bool ok = true;
        std::optional<std::uint32_t> suspect;
    };
    auto ctx = std::make_shared<Ctx>();

    auto assemble = [this, sw, ctx, seg, stripe, fidx, raid6, addr,
                     data = std::move(data)]() mutable {
        if (!ctx->ok) {
            sw->suspect = ctx->suspect;
            retryStripe(sw);
            return;
        }
        // P_new[r] = XOR_i!=f D_i[r] ^ new[r];
        // Q_new[r] = sum g^i D_i[r] ^ g^f new[r].
        ec::Buffer p(seg.length);
        ec::Buffer q(raid6 ? seg.length : 0);
        const auto &gf = ec::Gf256::instance();
        for (const auto &[idx, slice] : ctx->slices) {
            ec::xorInto(p.data(), slice.data(), seg.length);
            if (raid6) {
                gf.mulAccum(gf.pow2(idx), slice.data(), q.data(),
                            seg.length);
            }
        }
        ec::xorInto(p.data(), data.data(), seg.length);
        if (raid6)
            gf.mulAccum(gf.pow2(fidx), data.data(), q.data(), seg.length);

        chargeXor(static_cast<std::uint64_t>(seg.length) *
                      (ctx->slices.size() + 1),
                  [this, sw, stripe, addr, p = std::move(p),
                   q = std::move(q), raid6]() mutable {
            const std::uint64_t trace = sw->traceId;
            auto tally = std::make_shared<WriteTally>();
            tally->remaining = 1 + (raid6 ? 1 : 0);
            auto finish = [this, sw, tally](std::uint32_t dev,
                                            blockdev::IoStatus st) {
                if (st != blockdev::IoStatus::kOk) {
                    tally->ok = false;
                    if (st == blockdev::IoStatus::kTimedOut)
                        tally->suspect = dev;
                }
                if (--tally->remaining == 0) {
                    if (tally->ok) {
                        sw->done(true);
                    } else {
                        sw->suspect = tally->suspect;
                        retryStripe(sw);
                    }
                }
            };
            const std::uint32_t p_dev = geom_.parityDevice(stripe);
            initiator_.writeRemote(p_dev, addr, p,
                                   [finish, p_dev](blockdev::IoStatus st) {
                                       finish(p_dev, st);
                                   }, trace);
            if (raid6) {
                const std::uint32_t q_dev = geom_.qDevice(stripe);
                initiator_.writeRemote(
                    q_dev, addr, q,
                    [finish, q_dev](blockdev::IoStatus st) {
                        finish(q_dev, st);
                    }, trace);
            }
        }, sw->traceId);
    };

    // Fetch every survivor's slice of the written range.
    std::vector<std::uint32_t> survivors;
    for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i) {
        if (i != fidx)
            survivors.push_back(i);
    }
    ctx->remaining = static_cast<int>(survivors.size());
    chargeDataPath(static_cast<std::uint64_t>(seg.length) *
                       (survivors.size() + 1 + (raid6 ? 1 : 0)),
                   [this, sw, ctx, survivors, stripe, addr, seg,
                    assemble]() mutable {
        for (const auto idx : survivors) {
            const std::uint32_t dev = geom_.dataDevice(stripe, idx);
            initiator_.readRemote(
                dev, addr, seg.length,
                [ctx, idx, dev, assemble](blockdev::IoStatus st,
                                          ec::Buffer d) mutable {
                    if (st == blockdev::IoStatus::kOk) {
                        ctx->slices.emplace_back(idx, std::move(d));
                    } else {
                        ctx->ok = false;
                        if (st == blockdev::IoStatus::kTimedOut)
                            ctx->suspect = dev;
                    }
                    if (--ctx->remaining == 0)
                        assemble();
                }, sw->traceId);
        }
    }, sw->traceId);
}

void
HostCentricRaid::doFullStripe(std::shared_ptr<StripeWrite> sw)
{
    ++counters_.fullStripeWrites;
    const std::uint64_t stripe = sw->plan.stripe;
    const std::uint32_t k = geom_.dataChunks();
    const std::uint64_t addr = geom_.deviceAddress(stripe, 0);

    std::vector<ec::Buffer> chunks(k);
    for (std::size_t i = 0; i < sw->plan.writes.size(); ++i)
        chunks[sw->plan.writes[i].dataIdx] = sw->segData[i];

    const bool raid6 = geom_.level() == raid::RaidLevel::kRaid6;
    const std::uint64_t stripe_bytes = geom_.stripeDataSize();

    chargeXor(stripe_bytes, [this, sw, stripe, addr, chunks, raid6,
                             stripe_bytes]() {
        auto issue = [this, sw, stripe, addr, chunks, raid6]() {
            ec::Buffer p, q;
            if (raid6)
                ec::Raid6Codec::computePQ(chunks, p, q);
            else
                p = ec::Raid5Codec::computeParity(chunks);

            std::vector<std::pair<std::uint32_t, ec::Buffer>> ios;
            for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i)
                ios.emplace_back(geom_.dataDevice(stripe, i), chunks[i]);
            ios.emplace_back(geom_.parityDevice(stripe), p);
            if (raid6)
                ios.emplace_back(geom_.qDevice(stripe), q);

            auto tally = std::make_shared<WriteTally>();
            std::uint64_t total_bytes = 0;
            for (auto &[dev, buf] : ios) {
                if (failed_ && dev == *failed_)
                    continue;
                ++tally->remaining;
                total_bytes += buf.size();
            }
            assert(tally->remaining > 0);
            chargeDataPath(total_bytes, [this, sw, addr, ios, tally]() {
                for (const auto &[dev, buf] : ios) {
                    if (failed_ && dev == *failed_)
                        continue;
                    const std::uint32_t d = dev;
                    initiator_.writeRemote(
                        d, addr, buf,
                        [this, sw, tally, d](blockdev::IoStatus st) {
                            if (st != blockdev::IoStatus::kOk) {
                                tally->ok = false;
                                if (st == blockdev::IoStatus::kTimedOut)
                                    tally->suspect = d;
                            }
                            if (--tally->remaining == 0) {
                                if (tally->ok) {
                                    sw->done(true);
                                } else {
                                    if (tally->suspect)
                                        sw->suspect = tally->suspect;
                                    retryStripe(sw);
                                }
                            }
                        }, sw->traceId);
                }
            }, sw->traceId);
        };
        if (raid6)
            chargeGf(stripe_bytes, issue, sw->traceId);
        else
            issue();
    }, sw->traceId);
}

void
HostCentricRaid::doRmw(std::shared_ptr<StripeWrite> sw)
{
    ++counters_.rmwWrites;
    const std::uint64_t stripe = sw->plan.stripe;
    const auto &plan = sw->plan;
    const bool raid6 = geom_.level() == raid::RaidLevel::kRaid6;

    const std::uint32_t p_dev = geom_.parityDevice(stripe);
    const std::uint32_t q_dev = raid6 ? geom_.qDevice(stripe) : 0;
    const bool p_alive = !(failed_ && *failed_ == p_dev);
    const bool q_alive = raid6 && !(failed_ && *failed_ == q_dev);

    struct Ctx
    {
        int remaining = 0;
        bool ok = true;
        std::optional<std::uint32_t> suspect;
        // draid-lint: cap(stripe width; preread of touched chunks)
        std::vector<ec::Buffer> oldSegs;
        ec::Buffer oldP;
        ec::Buffer oldQ;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->oldSegs.resize(plan.writes.size());

    auto after_reads = [this, sw, ctx, stripe, p_alive, q_alive, p_dev,
                        q_dev]() {
        if (!ctx->ok) {
            sw->suspect = ctx->suspect;
            retryStripe(sw);
            return;
        }
        // Deltas -> new parity windows.
        std::uint64_t xor_bytes = 0;
        ec::Buffer new_p = ctx->oldP; // window-sized
        ec::Buffer new_q = ctx->oldQ;
        const auto &gf = ec::Gf256::instance();
        for (std::size_t i = 0; i < sw->plan.writes.size(); ++i) {
            const auto &seg = sw->plan.writes[i];
            ec::Buffer delta =
                ec::xorOf(ctx->oldSegs[i], sw->segData[i]);
            xor_bytes += 2 * delta.size();
            const std::uint32_t rel = seg.offset - sw->plan.parityOffset;
            if (p_alive)
                ec::xorInto(new_p.data() + rel, delta.data(), delta.size());
            if (q_alive) {
                gf.mulAccum(gf.pow2(seg.dataIdx), delta.data(),
                            new_q.data() + rel, delta.size());
            }
        }

        chargeXor(xor_bytes, [this, sw, stripe, new_p, new_q, p_alive,
                              q_alive, p_dev, q_dev]() {
            const std::uint64_t paddr =
                geom_.deviceAddress(stripe, sw->plan.parityOffset);

            auto tally = std::make_shared<WriteTally>();
            std::uint64_t bytes = 0;
            tally->remaining = static_cast<int>(sw->plan.writes.size()) +
                               (p_alive ? 1 : 0) + (q_alive ? 1 : 0);
            for (const auto &seg : sw->plan.writes)
                bytes += seg.length;
            bytes += (p_alive ? new_p.size() : 0) +
                     (q_alive ? new_q.size() : 0);

            auto finish = [this, sw, tally](std::uint32_t dev,
                                            blockdev::IoStatus st) {
                if (st != blockdev::IoStatus::kOk) {
                    tally->ok = false;
                    if (st == blockdev::IoStatus::kTimedOut)
                        tally->suspect = dev;
                }
                if (--tally->remaining == 0) {
                    if (tally->ok) {
                        sw->done(true);
                    } else {
                        sw->suspect = tally->suspect;
                        retryStripe(sw);
                    }
                }
            };

            chargeDataPath(bytes, [this, sw, stripe, paddr, new_p, new_q,
                                   p_alive, q_alive, p_dev, q_dev,
                                   finish]() {
                for (std::size_t i = 0; i < sw->plan.writes.size(); ++i) {
                    const auto &seg = sw->plan.writes[i];
                    const std::uint32_t dev =
                        geom_.dataDevice(stripe, seg.dataIdx);
                    initiator_.writeRemote(
                        dev, geom_.deviceAddress(stripe, seg.offset),
                        sw->segData[i],
                        [finish, dev](blockdev::IoStatus st) {
                            finish(dev, st);
                        }, sw->traceId);
                }
                if (p_alive) {
                    initiator_.writeRemote(
                        p_dev, paddr, new_p,
                        [finish, p_dev](blockdev::IoStatus st) {
                            finish(p_dev, st);
                        }, sw->traceId);
                }
                if (q_alive) {
                    initiator_.writeRemote(
                        q_dev, paddr, new_q,
                        [finish, q_dev](blockdev::IoStatus st) {
                            finish(q_dev, st);
                        }, sw->traceId);
                }
            }, sw->traceId);
        }, sw->traceId);
    };

    // Read phase: old data under each segment + old parity windows.
    ctx->remaining = static_cast<int>(plan.writes.size()) +
                     (p_alive ? 1 : 0) + (q_alive ? 1 : 0);
    std::uint64_t read_bytes = 0;
    for (const auto &seg : plan.writes)
        read_bytes += seg.length;
    read_bytes += (p_alive ? plan.parityLength : 0) +
                  (q_alive ? plan.parityLength : 0);

    chargeDataPath(read_bytes, [this, sw, ctx, stripe, p_alive, q_alive,
                                p_dev, q_dev, after_reads]() {
        auto join = [ctx, after_reads](bool ok, std::uint32_t dev) {
            if (!ok) {
                ctx->ok = false;
                ctx->suspect = dev;
            }
            if (--ctx->remaining == 0)
                after_reads();
        };
        for (std::size_t i = 0; i < sw->plan.writes.size(); ++i) {
            const auto &seg = sw->plan.writes[i];
            const std::uint32_t dev = geom_.dataDevice(stripe, seg.dataIdx);
            initiator_.readRemote(
                dev, geom_.deviceAddress(stripe, seg.offset), seg.length,
                [ctx, i, join, dev](blockdev::IoStatus st, ec::Buffer d) {
                    if (st == blockdev::IoStatus::kOk)
                        ctx->oldSegs[i] = std::move(d);
                    join(st == blockdev::IoStatus::kOk, dev);
                }, sw->traceId);
        }
        const std::uint64_t paddr =
            geom_.deviceAddress(stripe, sw->plan.parityOffset);
        if (p_alive) {
            initiator_.readRemote(
                p_dev, paddr, sw->plan.parityLength,
                [ctx, join, p_dev](blockdev::IoStatus st, ec::Buffer d) {
                    if (st == blockdev::IoStatus::kOk)
                        ctx->oldP = std::move(d);
                    join(st == blockdev::IoStatus::kOk, p_dev);
                }, sw->traceId);
        }
        if (q_alive) {
            initiator_.readRemote(
                q_dev, paddr, sw->plan.parityLength,
                [ctx, join, q_dev](blockdev::IoStatus st, ec::Buffer d) {
                    if (st == blockdev::IoStatus::kOk)
                        ctx->oldQ = std::move(d);
                    join(st == blockdev::IoStatus::kOk, q_dev);
                }, sw->traceId);
        }
    }, sw->traceId);
}

void
HostCentricRaid::doRcw(std::shared_ptr<StripeWrite> sw,
                       std::optional<ec::Buffer> failed_chunk_content)
{
    ++counters_.rcwWrites;
    const std::uint64_t stripe = sw->plan.stripe;
    const std::uint32_t k = geom_.dataChunks();
    const std::uint32_t chunk = geom_.chunkSize();
    const bool raid6 = geom_.level() == raid::RaidLevel::kRaid6;

    // Final content of every data chunk: merged old+new for partially
    // written chunks, read for untouched ones, supplied for a failed one.
    struct Ctx
    {
        // draid-lint: cap(stripe width; one buffer per data chunk)
        std::vector<ec::Buffer> chunks;
        int remaining = 0;
        bool ok = true;
        std::optional<std::uint32_t> suspect;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->chunks.assign(k, ec::Buffer());

    std::optional<std::uint32_t> fidx;
    if (failed_chunk_content) {
        assert(failed_);
        fidx = geom_.dataIndexOf(stripe, *failed_);
        ctx->chunks[*fidx] = *failed_chunk_content;
    }

    auto after_reads = [this, sw, ctx, stripe, chunk, raid6]() {
        if (!ctx->ok) {
            sw->suspect = ctx->suspect;
            retryStripe(sw);
            return;
        }
        // Overlay new segments.
        const auto &plan = sw->plan;
        for (std::size_t i = 0; i < plan.writes.size(); ++i) {
            const auto &seg = plan.writes[i];
            auto &c = ctx->chunks[seg.dataIdx];
            if (c.empty())
                c = ec::Buffer(chunk);
            std::memcpy(c.data() + seg.offset, sw->segData[i].data(),
                        seg.length);
        }

        const std::uint64_t stripe_bytes = geom_.stripeDataSize();
        chargeXor(stripe_bytes, [this, sw, ctx, stripe, raid6,
                                 stripe_bytes]() {
            auto issue = [this, sw, ctx, stripe, raid6]() {
                ec::Buffer p, q;
                if (raid6)
                    ec::Raid6Codec::computePQ(ctx->chunks, p, q);
                else
                    p = ec::Raid5Codec::computeParity(ctx->chunks);

                const std::uint32_t p_dev = geom_.parityDevice(stripe);
                const std::uint32_t q_dev = raid6 ? geom_.qDevice(stripe)
                                                  : 0;
                const bool p_alive = !(failed_ && *failed_ == p_dev);
                const bool q_alive =
                    raid6 && !(failed_ && *failed_ == q_dev);

                auto tally = std::make_shared<WriteTally>();
                tally->remaining =
                    static_cast<int>(sw->plan.writes.size()) +
                    (p_alive ? 1 : 0) + (q_alive ? 1 : 0);
                if (tally->remaining == 0) {
                    sw->done(true);
                    return;
                }
                std::uint64_t bytes = 0;
                for (const auto &seg : sw->plan.writes)
                    bytes += seg.length;
                bytes += (p_alive ? p.size() : 0) +
                         (q_alive ? q.size() : 0);

                auto finish = [this, sw, tally](std::uint32_t dev,
                                                blockdev::IoStatus st) {
                    if (st != blockdev::IoStatus::kOk) {
                        tally->ok = false;
                        if (st == blockdev::IoStatus::kTimedOut)
                            tally->suspect = dev;
                    }
                    if (--tally->remaining == 0) {
                        if (tally->ok) {
                            sw->done(true);
                        } else {
                            sw->suspect = tally->suspect;
                            retryStripe(sw);
                        }
                    }
                };
                chargeDataPath(bytes, [this, sw, stripe, p, q, p_dev,
                                       q_dev, p_alive, q_alive, finish]() {
                    const std::uint64_t addr =
                        geom_.deviceAddress(stripe, 0);
                    for (std::size_t i = 0; i < sw->plan.writes.size();
                         ++i) {
                        const auto &seg = sw->plan.writes[i];
                        const std::uint32_t dev =
                            geom_.dataDevice(stripe, seg.dataIdx);
                        initiator_.writeRemote(
                            dev, geom_.deviceAddress(stripe, seg.offset),
                            sw->segData[i],
                            [finish, dev](blockdev::IoStatus st) {
                                finish(dev, st);
                            }, sw->traceId);
                    }
                    if (p_alive) {
                        initiator_.writeRemote(
                            p_dev, addr, p,
                            [finish, p_dev](blockdev::IoStatus st) {
                                finish(p_dev, st);
                            }, sw->traceId);
                    }
                    if (q_alive) {
                        initiator_.writeRemote(
                            q_dev, addr, q,
                            [finish, q_dev](blockdev::IoStatus st) {
                                finish(q_dev, st);
                            }, sw->traceId);
                    }
                }, sw->traceId);
            };
            if (raid6)
                chargeGf(stripe_bytes, issue, sw->traceId);
            else
                issue();
        }, sw->traceId);
    };

    // Read phase: every chunk whose final content is not fully known.
    std::vector<std::uint32_t> to_read;
    std::vector<bool> fully_written(k, false);
    for (const auto &seg : sw->plan.writes) {
        if (seg.offset == 0 && seg.length == chunk)
            fully_written[seg.dataIdx] = true;
    }
    for (std::uint32_t i = 0; i < k; ++i) {
        if (fully_written[i])
            continue;
        if (fidx && *fidx == i)
            continue; // content supplied by the caller
        to_read.push_back(i);
    }
    if (to_read.empty()) {
        after_reads();
        return;
    }
    ctx->remaining = static_cast<int>(to_read.size());
    chargeDataPath(static_cast<std::uint64_t>(to_read.size()) * chunk,
                   [this, sw, ctx, stripe, to_read, after_reads]() {
        const std::uint64_t addr = geom_.deviceAddress(stripe, 0);
        for (const auto idx : to_read) {
            const std::uint32_t dev = geom_.dataDevice(stripe, idx);
            initiator_.readRemote(
                dev, addr, geom_.chunkSize(),
                [ctx, idx, dev, after_reads](blockdev::IoStatus st,
                                             ec::Buffer d) {
                    if (st == blockdev::IoStatus::kOk) {
                        ctx->chunks[idx] = std::move(d);
                    } else {
                        ctx->ok = false;
                        if (st == blockdev::IoStatus::kTimedOut)
                            ctx->suspect = dev;
                    }
                    if (--ctx->remaining == 0)
                        after_reads();
                }, sw->traceId);
        }
    }, sw->traceId);
}

void
HostCentricRaid::doParityLess(std::shared_ptr<StripeWrite> sw)
{
    const std::uint64_t stripe = sw->plan.stripe;
    auto tally = std::make_shared<WriteTally>();
    tally->remaining = static_cast<int>(sw->plan.writes.size());
    std::uint64_t bytes = 0;
    for (const auto &seg : sw->plan.writes)
        bytes += seg.length;
    chargeDataPath(bytes, [this, sw, stripe, tally]() {
        for (std::size_t i = 0; i < sw->plan.writes.size(); ++i) {
            const auto &seg = sw->plan.writes[i];
            const std::uint32_t dev =
                geom_.dataDevice(stripe, seg.dataIdx);
            initiator_.writeRemote(
                dev, geom_.deviceAddress(stripe, seg.offset),
                sw->segData[i],
                [this, sw, tally, dev](blockdev::IoStatus st) {
                    if (st != blockdev::IoStatus::kOk) {
                        tally->ok = false;
                        if (st == blockdev::IoStatus::kTimedOut)
                            tally->suspect = dev;
                    }
                    if (--tally->remaining == 0) {
                        if (tally->ok) {
                            sw->done(true);
                        } else {
                            sw->suspect = tally->suspect;
                            retryStripe(sw);
                        }
                    }
                }, sw->traceId);
        }
    }, sw->traceId);
}

void
HostCentricRaid::retryStripe(std::shared_ptr<StripeWrite> sw)
{
    if (sw->retriesLeft-- <= 0) {
        if (!failed_ && sw->suspect) {
            markFailed(*sw->suspect);
            executeStripeWrite(sw);
            return;
        }
        sw->done(false);
        return;
    }
    ++counters_.retries;
    executeStripeWrite(sw);
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void
HostCentricRaid::read(std::uint64_t offset, std::uint32_t length,
                      blockdev::ReadCallback cb)
{
    assert(offset + length <= sizeBytes());
    ++counters_.normalReads;
    const std::uint64_t trace = cluster_.tracer().mint();
    cluster_.telemetry().contention().noteOpStart(trace);
    const sim::Ticks op_start = cluster_.sim().now();
    auto extents = geom_.map(offset, length);
    ec::Buffer out(length);

    std::vector<std::pair<std::uint64_t, std::vector<GroupExtent>>> groups;
    std::size_t pos = 0;
    for (const auto &e : extents) {
        if (groups.empty() || groups.back().first != e.stripe)
            groups.push_back({e.stripe, {}});
        groups.back().second.push_back(GroupExtent{e, pos});
        pos += e.length;
    }

    auto remaining = std::make_shared<int>(static_cast<int>(groups.size()));
    auto all_ok = std::make_shared<bool>(true);
    auto group_done = [this, remaining, all_ok, out, cb, trace, op_start,
                       length](bool ok) {
        if (!ok)
            *all_ok = false;
        if (--*remaining == 0) {
            finishOpSpan(trace, "raid.read", op_start, length,
                         readLatencyUs_);
            cb(*all_ok ? blockdev::IoStatus::kOk
                       : blockdev::IoStatus::kError,
               out);
        }
    };

    auto submit = [this, groups = std::move(groups), out, group_done,
                   trace]() mutable {
        for (auto &[stripe, ge] : groups)
            readStripeGroup(stripe, std::move(ge), out, group_done, trace);
    };
    cluster_.sim().schedule(tuning_.queueDelay, "hostraid.queue",
                            [this, submit, trace]() mutable {
        cluster_.host().cpu().execute(tuning_.perOpCost, trace,
                                      "host.submit", std::move(submit));
    });
}

void
HostCentricRaid::readStripeGroup(std::uint64_t stripe,
                                 std::vector<GroupExtent> extents,
                                 ec::Buffer out,
                                 std::function<void(bool)> done,
                                 std::uint64_t trace)
{
    // The SPDK POC locks the stripe for normal reads (§8); MD does not.
    if (tuning_.lockReads) {
        auto inner = std::move(done);
        done = [this, stripe, inner = std::move(inner)](bool ok) {
            locks_.release(stripe);
            inner(ok);
        };
    }
    auto run = [this, stripe, extents = std::move(extents), out,
                done = std::move(done), trace]() mutable {
        const bool has_failed =
            failed_ && std::any_of(extents.begin(), extents.end(),
                                   [this](const GroupExtent &g) {
                                       return geom_.dataDevice(
                                                  g.extent.stripe,
                                                  g.extent.dataIdx) ==
                                              *failed_;
                                   });
        if (has_failed) {
            degradedStripeRead(stripe, std::move(extents), out,
                               std::move(done), trace);
            return;
        }
        auto remaining =
            std::make_shared<int>(static_cast<int>(extents.size()));
        auto all_ok = std::make_shared<bool>(true);
        std::uint64_t bytes = 0;
        for (const auto &g : extents)
            bytes += g.extent.length;
        chargeReadPath(bytes, [this, stripe,
                               extents = std::move(extents), out,
                               remaining, all_ok, done, trace]() {
            for (const auto &g : extents) {
                const std::uint32_t dev =
                    geom_.dataDevice(stripe, g.extent.dataIdx);
                initiator_.readRemote(
                    dev, geom_.deviceAddress(stripe, g.extent.offset),
                    g.extent.length,
                    [g, out, remaining, all_ok,
                     done](blockdev::IoStatus st, ec::Buffer d) mutable {
                        if (st != blockdev::IoStatus::kOk) {
                            *all_ok = false;
                        } else {
                            std::memcpy(out.data() + g.outPos, d.data(),
                                        d.size());
                        }
                        if (--*remaining == 0)
                            done(*all_ok);
                    }, trace);
            }
        }, trace);
    };

    if (tuning_.lockReads) {
        locks_.acquire(stripe,
                       [this, run = std::move(run), trace]() mutable {
            cluster_.host().cpu().execute(tuning_.lockCost, trace,
                                          "host.lock", std::move(run));
        });
        return;
    }
    run();
}

void
HostCentricRaid::degradedStripeRead(std::uint64_t stripe,
                                    std::vector<GroupExtent> extents,
                                    ec::Buffer out,
                                    std::function<void(bool)> done,
                                    std::uint64_t trace)
{
    ++counters_.degradedReads;
    const std::uint32_t fidx = geom_.dataIndexOf(stripe, *failed_);
    const auto failed_it =
        std::find_if(extents.begin(), extents.end(),
                     [fidx](const GroupExtent &g) {
                         return g.extent.dataIdx == fidx;
                     });
    assert(failed_it != extents.end());
    const std::uint32_t fo = failed_it->extent.offset;
    const std::uint32_t fl = failed_it->extent.length;
    const std::size_t fpos = failed_it->outPos;

    struct Ctx
    {
        // draid-lint: cap(stripe width; recon-range slices)
        std::vector<ec::Buffer> recon; ///< recon-range slices to XOR
        int remaining = 0;
        bool ok = true;
        bool release = false;
    };
    auto ctx = std::make_shared<Ctx>();

    auto extents_shared =
        std::make_shared<std::vector<GroupExtent>>(std::move(extents));

    auto finish = [this, ctx, out, fpos, fl, trace,
                   done = std::move(done)]() mutable {
        if (!ctx->ok) {
            done(false);
            return;
        }
        chargeXor(static_cast<std::uint64_t>(fl) * ctx->recon.size(),
                  [ctx, out, fpos, done = std::move(done)]() mutable {
            ec::Buffer rebuilt = ec::Raid5Codec::recover(ctx->recon);
            std::memcpy(out.data() + fpos, rebuilt.data(), rebuilt.size());
            done(true);
        }, trace);
    };

    // The host fetches the recon window of every surviving data chunk and
    // of P (n-1 reads). Requested survivor extents are fetched separately
    // — the host-centric baselines lack dRAID's §6.1 union co-design.
    std::uint64_t total_bytes = 0;
    std::vector<std::uint32_t> recon_devs;
    for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i) {
        if (i == fidx)
            continue;
        recon_devs.push_back(geom_.dataDevice(stripe, i));
        total_bytes += fl;
    }
    recon_devs.push_back(geom_.parityDevice(stripe));
    total_bytes += fl;
    for (const auto &g : *extents_shared) {
        if (g.extent.dataIdx != fidx)
            total_bytes += g.extent.length;
    }

    ctx->remaining = static_cast<int>(recon_devs.size());
    for (const auto &g : *extents_shared) {
        if (g.extent.dataIdx != fidx)
            ++ctx->remaining;
    }

    total_bytes = static_cast<std::uint64_t>(
        static_cast<double>(total_bytes) * tuning_.degradedPathFactor);
    chargeDataPath(total_bytes, [this, ctx, recon_devs, extents_shared,
                                 stripe, fo, fl, fidx, out, trace,
                                 finish]() mutable {
        const std::uint64_t recon_addr = geom_.deviceAddress(stripe, fo);
        for (const auto dev : recon_devs) {
            initiator_.readRemote(
                dev, recon_addr, fl,
                [ctx, finish](blockdev::IoStatus st,
                              ec::Buffer d) mutable {
                    if (st != blockdev::IoStatus::kOk)
                        ctx->ok = false;
                    else
                        ctx->recon.push_back(std::move(d));
                    if (--ctx->remaining == 0)
                        finish();
                }, trace);
        }
        for (const auto &g : *extents_shared) {
            if (g.extent.dataIdx == fidx)
                continue;
            const std::uint32_t dev =
                geom_.dataDevice(stripe, g.extent.dataIdx);
            initiator_.readRemote(
                dev, geom_.deviceAddress(stripe, g.extent.offset),
                g.extent.length,
                [ctx, g, out, finish](blockdev::IoStatus st,
                                      ec::Buffer d) mutable {
                    if (st != blockdev::IoStatus::kOk) {
                        ctx->ok = false;
                    } else {
                        std::memcpy(out.data() + g.outPos, d.data(),
                                    d.size());
                    }
                    if (--ctx->remaining == 0)
                        finish();
                }, trace);
        }
    }, trace);
}

void
HostCentricRaid::readChunk(std::uint64_t stripe, std::uint32_t data_idx,
                           std::function<void(bool, ec::Buffer)> cb,
                           std::uint64_t trace)
{
    const std::uint32_t dev = geom_.dataDevice(stripe, data_idx);
    const std::uint32_t chunk = geom_.chunkSize();
    const std::uint64_t addr = geom_.deviceAddress(stripe, 0);
    if (failed_ && dev == *failed_) {
        ec::Buffer out(chunk);
        std::vector<GroupExtent> extents{
            GroupExtent{raid::Extent{stripe, data_idx, 0, chunk}, 0}};
        degradedStripeRead(stripe, std::move(extents), out,
                           [cb, out](bool ok) { cb(ok, out); }, trace);
        return;
    }
    initiator_.readRemote(dev, addr, chunk,
                          [cb](blockdev::IoStatus st, ec::Buffer d) {
                              cb(st == blockdev::IoStatus::kOk,
                                 std::move(d));
                          }, trace);
}

// ---------------------------------------------------------------------------
// Rebuild
// ---------------------------------------------------------------------------

void
HostCentricRaid::reconstructChunk(std::uint64_t stripe,
                                  std::uint32_t spare_target,
                                  std::function<void(bool)> done)
{
    assert(failed_);
    const std::uint64_t trace = cluster_.tracer().mint();
    const sim::Ticks op_start = cluster_.sim().now();
    done = [this, trace, op_start, inner = std::move(done),
            chunk_bytes = geom_.chunkSize()](bool ok) {
        finishOpSpan(trace, "raid.reconstruct", op_start, chunk_bytes,
                     nullptr);
        inner(ok);
    };
    const raid::ChunkRole role = geom_.roleOf(stripe, *failed_);
    const std::uint32_t chunk = geom_.chunkSize();
    const std::uint64_t addr = geom_.deviceAddress(stripe, 0);

    // Sources: all surviving data chunks, plus P when rebuilding data.
    std::vector<std::uint32_t> sources;
    const bool q_rebuild = role == raid::ChunkRole::kParityQ;
    for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i) {
        const std::uint32_t dev = geom_.dataDevice(stripe, i);
        if (dev != *failed_)
            sources.push_back(dev);
    }
    if (role == raid::ChunkRole::kData)
        sources.push_back(geom_.parityDevice(stripe));

    struct Ctx
    {
        // draid-lint: cap(stripe width; one buffer per surviving device)
        std::vector<ec::Buffer> bufs;
        // draid-lint: cap(parallel to bufs; stripe width)
        std::vector<std::uint32_t> idxs; ///< data index per buf (Q rebuild)
        int remaining = 0;
        bool ok = true;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->remaining = static_cast<int>(sources.size());

    auto assemble = [this, ctx, stripe, spare_target, chunk, addr, q_rebuild,
                     trace, done = std::move(done)]() mutable {
        if (!ctx->ok) {
            done(false);
            return;
        }
        auto write_out = [this, spare_target, addr, trace,
                          done](ec::Buffer rebuilt) mutable {
            initiator_.writeRemote(spare_target, addr, std::move(rebuilt),
                                   [done](blockdev::IoStatus st) mutable {
                                       done(st == blockdev::IoStatus::kOk);
                                   }, trace);
        };
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(chunk) * ctx->bufs.size();
        if (q_rebuild) {
            chargeGf(bytes, [this, ctx, chunk, write_out]() mutable {
                const auto &gf = ec::Gf256::instance();
                ec::Buffer q(chunk);
                for (std::size_t i = 0; i < ctx->bufs.size(); ++i) {
                    gf.mulAccum(gf.pow2(ctx->idxs[i]),
                                ctx->bufs[i].data(), q.data(), chunk);
                }
                write_out(std::move(q));
            }, trace);
            return;
        }
        chargeXor(bytes, [ctx, write_out]() mutable {
            write_out(ec::Raid5Codec::recover(ctx->bufs));
        }, trace);
    };

    chargeDataPath(static_cast<std::uint64_t>(chunk) * sources.size(),
                   [this, ctx, sources, stripe, addr, chunk, trace,
                    assemble]() mutable {
        for (const auto dev : sources) {
            std::uint32_t idx = 0;
            if (geom_.roleOf(stripe, dev) == raid::ChunkRole::kData)
                idx = geom_.dataIndexOf(stripe, dev);
            initiator_.readRemote(
                dev, addr, chunk,
                [ctx, idx, assemble](blockdev::IoStatus st,
                                     ec::Buffer d) mutable {
                    if (st != blockdev::IoStatus::kOk) {
                        ctx->ok = false;
                    } else {
                        ctx->bufs.push_back(std::move(d));
                        ctx->idxs.push_back(idx);
                    }
                    if (--ctx->remaining == 0)
                        assemble();
                }, trace);
        }
    }, trace);
}

} // namespace draid::baselines
