/**
 * @file
 * The SPDK RAID POC baseline (paper §9.1): the Intel user-space RAID-5
 * proof of concept, enhanced — as the paper's authors did — with ISA-L
 * parity kernels and RAID-6 support. Lock-light poll-mode datapath, but
 * host-centric: all parity traffic crosses the host NIC, and normal reads
 * take the stripe lock (the behaviour dRAID's §8 optimization removes).
 */

#ifndef DRAID_BASELINES_SPDK_RAID_H
#define DRAID_BASELINES_SPDK_RAID_H

#include "baselines/host_raid.h"

namespace draid::baselines {

/** The enhanced SPDK RAID POC. */
class SpdkRaid : public HostCentricRaid
{
  public:
    SpdkRaid(cluster::Cluster &cluster, raid::RaidLevel level,
             std::uint32_t chunk_size, std::uint32_t width = 0);

  private:
    static HostRaidTuning tuning(const cluster::TestbedConfig &cfg);
};

} // namespace draid::baselines

#endif // DRAID_BASELINES_SPDK_RAID_H
