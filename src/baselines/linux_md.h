/**
 * @file
 * The Linux software RAID (MD driver) baseline (paper §2.3, §9.1).
 *
 * MD processes every byte through a single RAID thread's 4 KB stripe-cache
 * pages, with kernel block-layer costs per request. The per-page cost
 * grows with the stripe width (each stripe-cache entry spans all member
 * devices), which is why MD's write throughput *decreases* as drives are
 * added (Fig. 12).
 */

#ifndef DRAID_BASELINES_LINUX_MD_H
#define DRAID_BASELINES_LINUX_MD_H

#include "baselines/host_raid.h"

namespace draid::baselines {

/** Linux MD RAID over NVMe-oF block devices. */
class LinuxMdRaid : public HostCentricRaid
{
  public:
    LinuxMdRaid(cluster::Cluster &cluster, raid::RaidLevel level,
                std::uint32_t chunk_size, std::uint32_t width = 0);

  private:
    static HostRaidTuning tuning(const cluster::TestbedConfig &cfg,
                                 std::uint32_t width);
};

} // namespace draid::baselines

#endif // DRAID_BASELINES_LINUX_MD_H
