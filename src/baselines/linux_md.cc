#include "baselines/linux_md.h"

#include "sim/types.h"

namespace draid::baselines {

HostRaidTuning
LinuxMdRaid::tuning(const cluster::TestbedConfig &cfg, std::uint32_t width)
{
    HostRaidTuning t;
    t.perOpCost = cfg.mdRequestCost; // block-layer request handling
    t.lockCost = sim::Ticks::zero();
    t.lockReads = false;
    // Single md thread: every byte goes through 4 KB stripe-cache pages
    // whose handling cost scales with the stripe width (each stripe-head
    // tracks per-device strip state).
    const double page_cost_ns =
        static_cast<double>(cfg.mdPageCost.raw()) *
        (0.45 + 0.07 * static_cast<double>(width));
    t.dataPathBw = 4096.0 / (page_cost_ns * 1e-9);
    // Reads bypass the stripe cache: only bio handling per page.
    t.readPathBw = 3.5 * t.dataPathBw;
    t.xorBw = cfg.xorBw; // MD also uses accelerated XOR kernels
    t.gfBw = cfg.gfBw;
    t.queueDelay = cfg.mdQueueDelay; // kernel I/O path submission latency
    t.degradedPathFactor = 5.0;      // serialized stripe-cache recovery
    return t;
}

LinuxMdRaid::LinuxMdRaid(cluster::Cluster &cluster, raid::RaidLevel level,
                         std::uint32_t chunk_size, std::uint32_t width)
    : HostCentricRaid(cluster, level, chunk_size, width,
                      tuning(cluster.config(),
                             width == 0 ? cluster.numTargets() : width))
{
}

} // namespace draid::baselines
