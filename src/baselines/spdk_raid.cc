#include "baselines/spdk_raid.h"

namespace draid::baselines {

HostRaidTuning
SpdkRaid::tuning(const cluster::TestbedConfig &cfg)
{
    HostRaidTuning t;
    t.perOpCost = sim::Ticks::zero();             // poll-mode, no kernel crossing
    t.lockCost = cfg.lockCost;   // stripe lock pair
    t.lockReads = true;          // the POC locks normal reads (§8)
    t.dataPathBw = 40e9;         // user-space zero-copy datapath
    t.readPathBw = 60e9;
    t.xorBw = cfg.xorBw;
    t.gfBw = cfg.gfBw;
    t.queueDelay = sim::Ticks::zero();
    return t;
}

SpdkRaid::SpdkRaid(cluster::Cluster &cluster, raid::RaidLevel level,
                   std::uint32_t chunk_size, std::uint32_t width)
    : HostCentricRaid(cluster, level, chunk_size, width,
                      tuning(cluster.config()))
{
}

} // namespace draid::baselines
