/**
 * @file
 * Host-centric parity RAID over plain NVMe-oF — the architecture of both
 * comparison systems (paper §9.1): the Intel SPDK RAID-5 POC (enhanced
 * with ISA-L and RAID-6 by the authors) and Linux software RAID (MD).
 *
 * All parity work happens at the host: a read-modify-write reads the old
 * data and parity *through the host NIC*, XORs locally, and writes back —
 * 2x outbound bytes per user byte for RAID-5 (3x for RAID-6), which is
 * precisely the bandwidth wall dRAID removes (§2.3). Degraded reads pull
 * n-1 chunks to the host.
 *
 * The two baselines differ only in their Tuning: lock behaviour, per-page
 * kernel costs, and queueing delays.
 */

#ifndef DRAID_BASELINES_HOST_RAID_H
#define DRAID_BASELINES_HOST_RAID_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "blockdev/block_device.h"
#include "blockdev/nvmf_initiator.h"
#include "blockdev/nvmf_target.h"
#include "cluster/cluster.h"
#include "net/fabric.h"
#include "raid/stripe_lock.h"
#include "raid/write_plan.h"

namespace draid::baselines {

/** Cost/behaviour knobs distinguishing the SPDK POC from Linux MD. */
struct HostRaidTuning
{
    /** Extra fixed host CPU per user operation (kernel path for MD). */
    sim::Ticks perOpCost = sim::Ticks::zero();

    /** Stripe lock acquire+release CPU cost; 0 disables the charge. */
    sim::Ticks lockCost = sim::Ticks::zero();

    /** Whether normal reads take the stripe lock (SPDK POC does, §8). */
    bool lockReads = false;

    /**
     * Host data-path throughput in bytes/s: every byte moved through the
     * host RAID engine on the *write and reconstruction* paths is charged
     * at this rate (the single MD thread's 4 KB-page handling). Very
     * large for the SPDK POC (lock-light user-space datapath).
     */
    double dataPathBw = 1e12;

    /**
     * Normal-read path throughput. MD reads bypass the stripe cache and
     * go straight to the member devices, so this is much higher than the
     * write path.
     */
    double readPathBw = 1e12;

    /** Parity arithmetic rates (ISA-L class for both, per §9.1). */
    double xorBw = 12e9;
    double gfBw = 6e9;

    /** Fixed extra submission latency per user op (kernel I/O stack). */
    sim::Ticks queueDelay = sim::Ticks::zero();

    /**
     * Multiplier on the data-path charge of degraded-read reconstruction.
     * MD reconstructs through serialized stripe-cache handling, which
     * costs far more than its streaming write path (Fig. 15: ~834 MB/s).
     */
    double degradedPathFactor = 1.0;

    int maxRetries = 3;
};

/** Operation counters for benches and tests. */
struct HostRaidCounters
{
    std::uint64_t fullStripeWrites = 0;
    std::uint64_t rmwWrites = 0;
    std::uint64_t rcwWrites = 0;
    std::uint64_t normalReads = 0;
    std::uint64_t degradedReads = 0;
    std::uint64_t degradedWrites = 0;
    std::uint64_t retries = 0;
};

/** A complete host-centric RAID system: host engine + NVMe-oF targets. */
class HostCentricRaid : public blockdev::BlockDevice, public net::Endpoint
{
  public:
    HostCentricRaid(cluster::Cluster &cluster, raid::RaidLevel level,
                    std::uint32_t chunk_size, std::uint32_t width,
                    const HostRaidTuning &tuning);

    // --- BlockDevice ---
    std::uint64_t sizeBytes() const override;
    void read(std::uint64_t offset, std::uint32_t length,
              blockdev::ReadCallback cb) override;
    void write(std::uint64_t offset, ec::Buffer data,
               blockdev::WriteCallback cb) override;

    // --- Endpoint (completions for the initiator) ---
    void onMessage(const net::Message &msg) override;

    // --- array management ---
    void markFailed(std::uint32_t device);
    void clearFailed() { failed_.reset(); }
    bool isDegraded() const { return failed_.has_value(); }
    std::optional<std::uint32_t> failedDevice() const { return failed_; }

    /** Host-centric rebuild of one stripe's failed chunk onto a spare. */
    void reconstructChunk(std::uint64_t stripe, std::uint32_t spare_target,
                          std::function<void(bool)> done);

    const raid::Geometry &geometry() const { return geom_; }
    const HostRaidCounters &counters() const { return counters_; }

  protected:
    // --- write path ---
    struct StripeWrite
    {
        raid::StripeWritePlan plan;
        // draid-lint: cap(plan.writes; at most stripe width)
        std::vector<ec::Buffer> segData;
        int retriesLeft = 0;
        std::optional<std::uint32_t> suspect; ///< device that timed out
        std::function<void(bool)> done;
        std::uint64_t traceId = 0; ///< telemetry trace of the user op
    };

    void executeStripeWrite(std::shared_ptr<StripeWrite> sw);
    void doFullStripe(std::shared_ptr<StripeWrite> sw);
    void doRmw(std::shared_ptr<StripeWrite> sw);
    void doRcw(std::shared_ptr<StripeWrite> sw,
               std::optional<ec::Buffer> failed_chunk_content);
    void doParityLess(std::shared_ptr<StripeWrite> sw);
    /**
     * Degraded write touching the failed chunk: update the parity window
     * directly from the survivors' slices of the written range plus the
     * new data (host-centric version of dRAID's targeted path).
     */
    void doDegradedTargeted(std::shared_ptr<StripeWrite> sw,
                            const raid::WriteSegment &seg, ec::Buffer data);
    void retryStripe(std::shared_ptr<StripeWrite> sw);

    // --- read path ---
    struct GroupExtent
    {
        raid::Extent extent;
        std::size_t outPos;
    };

    void readStripeGroup(std::uint64_t stripe,
                         std::vector<GroupExtent> extents, ec::Buffer out,
                         std::function<void(bool)> done,
                         std::uint64_t trace = 0);
    void degradedStripeRead(std::uint64_t stripe,
                            std::vector<GroupExtent> extents, ec::Buffer out,
                            std::function<void(bool)> done,
                            std::uint64_t trace = 0);

    /** Read a whole data chunk, reconstructing on the host if failed. */
    void readChunk(std::uint64_t stripe, std::uint32_t data_idx,
                   std::function<void(bool, ec::Buffer)> cb,
                   std::uint64_t trace = 0);

    /** Charge the host data path for moving @p bytes, then run @p fn. */
    void chargeDataPath(std::uint64_t bytes, sim::EventFn fn,
                        std::uint64_t trace = 0);

    /** Charge the (cheaper) normal-read path. */
    void chargeReadPath(std::uint64_t bytes, sim::EventFn fn,
                        std::uint64_t trace = 0);
    void chargeXor(std::uint64_t bytes, sim::EventFn fn,
                   std::uint64_t trace = 0);
    void chargeGf(std::uint64_t bytes, sim::EventFn fn,
                  std::uint64_t trace = 0);

    /**
     * Observe an op's end-to-end latency and, when traced, record the
     * host-side "op" lane span covering it.
     */
    void finishOpSpan(std::uint64_t trace, const char *name,
                      sim::Ticks start, std::uint64_t bytes,
                      telemetry::Histogram *lat_us);

    cluster::Cluster &cluster_;
    HostRaidTuning tuning_;
    std::uint32_t width_;
    raid::Geometry geom_;
    raid::WritePlanner planner_;
    blockdev::CommandIdAllocator ids_;
    blockdev::NvmfInitiator initiator_;
    raid::StripeLockTable locks_;
    std::optional<std::uint32_t> failed_;
    HostRaidCounters counters_;
    // draid-lint: cap(one NVMf target per member device; fixed topology)
    std::vector<std::unique_ptr<blockdev::NvmfTarget>> targets_;
    telemetry::Histogram *readLatencyUs_ = nullptr;
    telemetry::Histogram *writeLatencyUs_ = nullptr;
};

} // namespace draid::baselines

#endif // DRAID_BASELINES_HOST_RAID_H
