/**
 * @file
 * Cluster: assembles the simulated testbed — one host plus N storage
 * servers on a common fabric — and provides failure-injection hooks used
 * by the degraded-state experiments and the failure-handling tests.
 */

#ifndef DRAID_CLUSTER_CLUSTER_H
#define DRAID_CLUSTER_CLUSTER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/node.h"
#include "cluster/testbed.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace draid::cluster {

/** The simulated testbed. */
class Cluster
{
  public:
    /**
     * @param config        calibration constants
     * @param num_targets   storage servers (one SSD each)
     * @param target_goodputs  optional per-target NIC bandwidth override;
     *        entries beyond the vector fall back to the 100 Gbps default.
     *        Used by the heterogeneous-network experiment (Fig. 17b).
     */
    Cluster(const TestbedConfig &config, std::uint32_t num_targets,
            std::vector<double> target_goodputs = {});

    sim::Simulator &sim() { return sim_; }
    net::Fabric &fabric() { return fabric_; }
    const TestbedConfig &config() const { return config_; }

    Node &host() { return *host_; }
    Node &target(std::uint32_t i) { return *targets_.at(i); }
    std::uint32_t numTargets() const
    {
        return static_cast<std::uint32_t>(targets_.size());
    }

    sim::NodeId hostId() const { return 0; }
    sim::NodeId targetNodeId(std::uint32_t i) const { return i + 1; }

    /** Target index of a fabric node id. @pre node > 0 */
    std::uint32_t
    targetIndexOf(sim::NodeId node) const
    {
        return node - 1;
    }

    /** The testbed's telemetry bundle (metrics + tracer + sampler). */
    telemetry::Telemetry &telemetry() { return telemetry_; }
    const telemetry::Telemetry &telemetry() const { return telemetry_; }
    telemetry::Tracer &tracer() { return telemetry_.tracer(); }

    /** Human name for a fabric node id: "host0" or "node<i>". */
    std::string nodeName(sim::NodeId node) const;

    /** Metric scope rooted at a node's name ("node3.nic.tx_bytes"...). */
    telemetry::MetricScope nodeScope(sim::NodeId node)
    {
        return telemetry_.root().scope(nodeName(node));
    }

    /**
     * Begin periodic busy-fraction sampling of every NIC direction, CPU
     * core, and SSD channel. Observe-only; safe to leave off (the default).
     */
    void startUtilizationSampling(sim::Ticks interval);

    /** Take a storage server off the network (prolonged failure, §5.4). */
    void failTarget(std::uint32_t i);

    /** Bring a previously failed server back (transient failure). */
    void recoverTarget(std::uint32_t i);

    bool isTargetFailed(std::uint32_t i) const;

  private:
    /** Register per-node probes and bind span sinks for @p node. */
    void instrumentNode(Node &node);

    TestbedConfig config_;
    sim::Simulator sim_;
    net::Fabric fabric_;
    telemetry::Telemetry telemetry_;
    std::unique_ptr<Node> host_;
    // draid-lint: cap(num_targets; fixed at construction)
    std::vector<std::unique_ptr<Node>> targets_;
};

} // namespace draid::cluster

#endif // DRAID_CLUSTER_CLUSTER_H
