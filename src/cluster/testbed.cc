// TestbedConfig is a plain aggregate; this translation unit compiles the
// header standalone for include hygiene.
#include "cluster/testbed.h"
