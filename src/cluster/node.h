/**
 * @file
 * A cluster node: one NIC, one poll-mode CPU core, and (on storage
 * servers) one NVMe SSD. The paper strictly limits dRAID to one core per
 * SSD on the server side (§7); the host likewise runs the controller on a
 * single SPDK reactor core.
 */

#ifndef DRAID_CLUSTER_NODE_H
#define DRAID_CLUSTER_NODE_H

#include <memory>
#include <optional>

#include "net/nic.h"
#include "nvme/ssd.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/types.h"
#include "telemetry/lane_tap.h"

namespace draid::cluster {

/** One machine in the testbed. */
class Node
{
  public:
    /**
     * @param sim   owning simulator
     * @param id    fabric address
     * @param nic_goodput  per-direction NIC bandwidth, bytes/s
     * @param nic_per_msg  per-message NIC occupancy
     * @param ssd   drive profile; nullopt for the (diskless) host
     */
    Node(sim::Simulator &sim, sim::NodeId id, double nic_goodput,
         sim::Ticks nic_per_msg, std::optional<nvme::SsdConfig> ssd);

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    sim::NodeId id() const { return id_; }
    net::Nic &nic() { return nic_; }
    sim::CpuCore &cpu() { return cpu_; }

    /**
     * Observe-only telemetry taps for the node's FIFO resources; the
     * Cluster binds tracer/contention into them and attaches them to the
     * NIC pipes and CPU core (see sim/service.h for the seam contract).
     */
    telemetry::LaneTap &txTap() { return txTap_; }
    telemetry::LaneTap &rxTap() { return rxTap_; }
    telemetry::LaneTap &cpuTap() { return cpuTap_; }

    /** The node's drive. @pre hasSsd() */
    nvme::Ssd &ssd() { return *ssd_; }
    bool hasSsd() const { return ssd_ != nullptr; }

  private:
    sim::NodeId id_;
    net::Nic nic_;
    sim::CpuCore cpu_;
    telemetry::LaneTap txTap_{telemetry::LaneTap::Style::kPipe};
    telemetry::LaneTap rxTap_{telemetry::LaneTap::Style::kPipe};
    telemetry::LaneTap cpuTap_{telemetry::LaneTap::Style::kCpu};
    std::unique_ptr<nvme::Ssd> ssd_;
};

} // namespace draid::cluster

#endif // DRAID_CLUSTER_NODE_H
