#include "cluster/node.h"

namespace draid::cluster {

Node::Node(sim::Simulator &sim, sim::NodeId id, double nic_goodput,
           sim::Ticks nic_per_msg, std::optional<nvme::SsdConfig> ssd)
    : id_(id),
      nic_(sim, nic_goodput, nic_per_msg),
      cpu_(sim),
      ssd_(ssd ? std::make_unique<nvme::Ssd>(sim, *ssd) : nullptr)
{
}

} // namespace draid::cluster
