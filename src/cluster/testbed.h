/**
 * @file
 * Testbed calibration: every constant of the simulated CloudLab
 * c6525-100g deployment in one place (paper §9.1).
 *
 * Calibration sources, all from the paper itself:
 *  - NIC goodput ~92 Gbps out of 100 Gbps (§9.2) -> 11.5e9 B/s/direction;
 *    the heterogeneous experiments use 25 Gbps NICs -> 2.875e9 B/s.
 *  - Single-drive write throughput ~19 Gbps (§2.3) -> 2.375e9 B/s.
 *  - Read bandwidth such that six drives saturate the NIC (§9.2)
 *    -> 3.2e9 B/s (typical of the Dell Ent NVMe AGN MU drive).
 *  - ISA-L-class XOR at ~12 GB/s/core, GF multiply-accumulate at ~6 GB/s
 *    (§8); with these rates dRAID's server-side work stays below 25% of
 *    one core per SSD, matching §7.
 *  - Linux MD per-page costs chosen so MD reproduces the absolute levels
 *    of Figures 9-12 (~2 GB/s writes, 834 MB/s degraded reads).
 */

#ifndef DRAID_CLUSTER_TESTBED_H
#define DRAID_CLUSTER_TESTBED_H

#include <cstdint>

#include "nvme/ssd.h"
#include "sim/types.h"

namespace draid::cluster {

/** All tunable constants of the simulated testbed. */
struct TestbedConfig
{
    // --- fabric ---
    double nicGoodput100g = 11.5e9;  ///< bytes/s per direction (~92 Gbps)
    double nicGoodput25g = 2.875e9;  ///< bytes/s per direction (~23 Gbps)
    sim::Ticks nicPerMessage = sim::Ticks::ns(250);  ///< per-message port occupancy
    sim::Ticks propagation = sim::Ticks::ns(1500);   ///< one-way wire + switch delay

    // --- drives ---
    nvme::SsdConfig ssd;

    // --- compute kernels (per core) ---
    double xorBw = 12e9; ///< XOR parity bytes/s (ISA-L class)
    double gfBw = 6e9;   ///< GF(2^8) multiply-accumulate bytes/s

    // --- per-command CPU costs ---
    sim::Ticks hostCmdCost = sim::Ticks::ns(550); ///< host: build + post one command
    sim::Ticks hostCompletionCost = sim::Ticks::ns(250); ///< host: retire one completion
    sim::Ticks lockCost = sim::Ticks::ns(450);    ///< SPDK POC stripe lock pair
    sim::Ticks serverCmdCost = sim::Ticks::ns(600); ///< target: parse + start a command

    // --- Linux MD model ---
    sim::Ticks mdPageCost = sim::Ticks::ns(480); ///< per-4KB page on the single md thread
    sim::Ticks mdRequestCost = sim::Ticks::ns(2500); ///< kernel block layer per request
    sim::Ticks mdQueueDelay = sim::Ticks::us(18); ///< kernel I/O path

    // --- failure handling (§5.4) ---
    sim::Ticks opTimeout = sim::Ticks::ms(50);

    // --- bandwidth-aware reconstruction (§6.2) ---
    sim::Ticks rebalancePeriod = sim::Ticks::ms(10);
    double ewmaAlpha = 0.3;

    /** The paper's default array shape (§9.1). */
    static constexpr std::uint32_t kDefaultChunkKb = 512;
    static constexpr std::uint32_t kDefaultTargets = 8;
    static constexpr std::uint32_t kDefaultIoKb = 128;
};

} // namespace draid::cluster

#endif // DRAID_CLUSTER_TESTBED_H
