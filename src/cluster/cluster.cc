#include "cluster/cluster.h"

namespace draid::cluster {

Cluster::Cluster(const TestbedConfig &config, std::uint32_t num_targets,
                 std::vector<double> target_goodputs)
    : config_(config), sim_(), fabric_(sim_, config.propagation)
{
    host_ = std::make_unique<Node>(sim_, hostId(), config.nicGoodput100g,
                                   config.nicPerMessage, std::nullopt);
    fabric_.attach(hostId(), host_->nic(), nullptr);

    targets_.reserve(num_targets);
    for (std::uint32_t i = 0; i < num_targets; ++i) {
        const double goodput = i < target_goodputs.size()
                                   ? target_goodputs[i]
                                   : config.nicGoodput100g;
        auto node = std::make_unique<Node>(sim_, targetNodeId(i), goodput,
                                           config.nicPerMessage, config.ssd);
        fabric_.attach(targetNodeId(i), node->nic(), nullptr);
        targets_.push_back(std::move(node));
    }
}

void
Cluster::failTarget(std::uint32_t i)
{
    fabric_.setNodeDown(targetNodeId(i), true);
}

void
Cluster::recoverTarget(std::uint32_t i)
{
    fabric_.setNodeDown(targetNodeId(i), false);
}

bool
Cluster::isTargetFailed(std::uint32_t i) const
{
    return fabric_.isDown(targetNodeId(i));
}

} // namespace draid::cluster
