#include "cluster/cluster.h"

#include <string>

namespace draid::cluster {

Cluster::Cluster(const TestbedConfig &config, std::uint32_t num_targets,
                 std::vector<double> target_goodputs)
    : config_(config), sim_(), fabric_(sim_, config.propagation)
{
    fabric_.bindTrace(&telemetry_.tracer());
    host_ = std::make_unique<Node>(sim_, hostId(), config.nicGoodput100g,
                                   config.nicPerMessage, std::nullopt);
    fabric_.attach(hostId(), host_->nic(), nullptr);
    instrumentNode(*host_);

    targets_.reserve(num_targets);
    for (std::uint32_t i = 0; i < num_targets; ++i) {
        const double goodput = i < target_goodputs.size()
                                   ? target_goodputs[i]
                                   : config.nicGoodput100g;
        auto node = std::make_unique<Node>(sim_, targetNodeId(i), goodput,
                                           config.nicPerMessage, config.ssd);
        fabric_.attach(targetNodeId(i), node->nic(), nullptr);
        instrumentNode(*node);
        targets_.push_back(std::move(node));
    }

    auto fab = telemetry_.root().scope("fabric");
    fab.probe("messages_delivered", [this] {
        return static_cast<double>(fabric_.messagesDelivered());
    });
    fab.probe("messages_dropped", [this] {
        return static_cast<double>(fabric_.messagesDropped());
    });
}

std::string
Cluster::nodeName(sim::NodeId node) const
{
    return node == hostId() ? "host0" : "node" + std::to_string(node);
}

void
Cluster::instrumentNode(Node &node)
{
    const sim::NodeId id = node.id();
    telemetry::Tracer &tracer = telemetry_.tracer();
    tracer.setNodeName(id, nodeName(id));
    // The sim-layer resources are telemetry-blind (layering DAG, DESIGN.md
    // §6): each gets a lane label plus an observe-only LaneTap the node
    // owns, and the tap carries the tracer/contention bindings.
    node.nic().tx().setLabel("nic.tx");
    node.nic().rx().setLabel("nic.rx");
    node.txTap().bindTrace(&tracer, id);
    node.rxTap().bindTrace(&tracer, id);
    node.cpuTap().bindTrace(&tracer, id);

    // Contention attribution: every FIFO resource registers with the
    // tracker up front; the hooks stay one predictable branch until the
    // harness enables the tracker (--tenants= / --interference=).
    telemetry::ContentionTracker &ct = telemetry_.contention();
    using RK = telemetry::ContentionTracker::ResourceKind;
    node.txTap().bindContention(&ct, ct.registerResource(id, RK::NicTx));
    node.rxTap().bindContention(&ct, ct.registerResource(id, RK::NicRx));
    node.cpuTap().bindContention(&ct, ct.registerResource(id, RK::Cpu));
    node.nic().tx().setObserver(&node.txTap());
    node.nic().rx().setObserver(&node.rxTap());
    node.cpu().setObserver(&node.cpuTap());

    if (node.hasSsd()) {
        node.ssd().bindTrace(&tracer, id);
        // Media-error discoveries (LatentSectorError) land in the cluster
        // journal with the drive's own node id.
        node.ssd().bindJournal(&telemetry_.journal(), id);
        node.ssd().bindContention(
            &ct, ct.registerResource(id, RK::SsdChannel));
    }

    // Pull probes over the counters the components already keep; sampling
    // them at snapshot time costs the hot path nothing.
    auto scope = nodeScope(id);
    auto nic = scope.scope("nic");
    const net::Nic &n = node.nic();
    nic.probe("tx_bytes", [&n] {
        return static_cast<double>(n.tx().bytesTransferred());
    });
    nic.probe("tx_ops", [&n] {
        return static_cast<double>(n.tx().opsTransferred());
    });
    nic.probe("tx_busy_ticks", [&n] {
        return static_cast<double>(n.tx().busyTime().raw());
    });
    nic.probe("rx_bytes", [&n] {
        return static_cast<double>(n.rx().bytesTransferred());
    });
    nic.probe("rx_ops", [&n] {
        return static_cast<double>(n.rx().opsTransferred());
    });
    nic.probe("rx_busy_ticks", [&n] {
        return static_cast<double>(n.rx().busyTime().raw());
    });

    auto cpu = scope.scope("cpu");
    const sim::CpuCore &core = node.cpu();
    cpu.probe("busy_ticks",
              [&core] { return static_cast<double>(core.busyTime().raw()); });

    if (node.hasSsd()) {
        auto ssd = scope.scope("ssd");
        const nvme::Ssd &drive = node.ssd();
        ssd.probe("reads", [&drive] {
            return static_cast<double>(drive.readsCompleted());
        });
        ssd.probe("writes", [&drive] {
            return static_cast<double>(drive.writesCompleted());
        });
        ssd.probe("bytes_read", [&drive] {
            return static_cast<double>(drive.bytesRead());
        });
        ssd.probe("bytes_written", [&drive] {
            return static_cast<double>(drive.bytesWritten());
        });
        ssd.probe("channel_busy_ticks", [&drive] {
            return static_cast<double>(drive.channel().busyTime().raw());
        });
    }
}

void
Cluster::startUtilizationSampling(sim::Ticks interval)
{
    telemetry::UtilizationSampler &sampler = telemetry_.sampler();
    auto addNode = [&sampler](Node &node) {
        const sim::NodeId id = node.id();
        const net::Nic &n = node.nic();
        sampler.addSource(id, "nic.tx.util",
                          [&n] { return n.tx().busyTime(); });
        sampler.addSource(id, "nic.rx.util",
                          [&n] { return n.rx().busyTime(); });
        const sim::CpuCore &core = node.cpu();
        sampler.addSource(id, "cpu.util",
                          [&core] { return core.busyTime(); });
        if (node.hasSsd()) {
            const nvme::Ssd &drive = node.ssd();
            sampler.addSource(id, "ssd.util", [&drive] {
                return drive.channel().busyTime();
            });
        }
    };
    addNode(*host_);
    for (auto &t : targets_)
        addNode(*t);
    sampler.start(sim_, interval, &telemetry_.tracer());
}

void
Cluster::failTarget(std::uint32_t i)
{
    fabric_.setNodeDown(targetNodeId(i), true);
    telemetry_.journal().record(telemetry::EventType::kTargetDown,
                                targetNodeId(i), sim_.now().raw(), i);
}

void
Cluster::recoverTarget(std::uint32_t i)
{
    fabric_.setNodeDown(targetNodeId(i), false);
    telemetry_.journal().record(telemetry::EventType::kTargetRecovered,
                                targetNodeId(i), sim_.now().raw(), i);
}

bool
Cluster::isTargetFailed(std::uint32_t i) const
{
    return fabric_.isDown(targetNodeId(i));
}

} // namespace draid::cluster
