#include "core/bw_aware.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace draid::core {

std::vector<double>
solveReducerProbabilities(const std::vector<double> &available_bw,
                          double load)
{
    const std::size_t n = available_bw.size();
    assert(n > 0);
    std::vector<double> probs(n, 1.0 / static_cast<double>(n));
    if (load <= 0.0 || n == 1)
        return probs;

    // Water-filling on R* = B_i - P_i * load with sum P_i = 1:
    // P_i = max(0, B_i - R*) / load, so find R* with
    //   sum_i max(0, B_i - R*) = load.
    // The left side is continuous and decreasing in R*; scan the sorted
    // breakpoints to find the active set.
    std::vector<double> sorted(available_bw);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());

    double level = 0.0;
    bool found = false;
    double prefix = 0.0;
    for (std::size_t m = 1; m <= n; ++m) {
        prefix += sorted[m - 1];
        // With the top-m candidates active: R* = (prefix - load) / m.
        const double candidate =
            (prefix - load) / static_cast<double>(m);
        const double lower = m < n ? sorted[m] : -1e300;
        if (candidate >= lower) {
            level = candidate;
            found = true;
            break;
        }
    }
    assert(found);
    (void)found;

    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        probs[i] = std::max(0.0, available_bw[i] - level) / load;
        total += probs[i];
    }
    // Normalize away floating-point drift.
    if (total > 0.0) {
        for (auto &p : probs)
            p /= total;
    } else {
        std::fill(probs.begin(), probs.end(),
                  1.0 / static_cast<double>(n));
    }
    return probs;
}

std::uint32_t
RandomReducerSelector::select(const std::vector<std::uint32_t> &candidates,
                              sim::Rng &rng)
{
    assert(!candidates.empty());
    return candidates[rng.nextBounded(candidates.size())];
}

void
BwAwareReducerSelector::refresh(const std::vector<std::uint32_t> &targets,
                                const std::vector<double> &available_bw,
                                double observed_load, double fanin)
{
    assert(targets.size() == available_bw.size());
    loadEwma_.update(observed_load);
    targets_ = targets;
    probs_ = solveReducerProbabilities(available_bw,
                                       loadEwma_.value() * fanin);
}

std::uint32_t
BwAwareReducerSelector::select(const std::vector<std::uint32_t> &candidates,
                               sim::Rng &rng)
{
    assert(!candidates.empty());
    // Restrict the plan to the offered candidates and renormalize.
    double total = 0.0;
    for (auto c : candidates)
        total += probabilityOf(c);
    if (total <= 0.0)
        return candidates[rng.nextBounded(candidates.size())];

    double draw = rng.nextDouble() * total;
    for (auto c : candidates) {
        draw -= probabilityOf(c);
        if (draw <= 0.0)
            return c;
    }
    return candidates.back();
}

double
BwAwareReducerSelector::probabilityOf(std::uint32_t target) const
{
    for (std::size_t i = 0; i < targets_.size(); ++i) {
        if (targets_[i] == target)
            return probs_[i];
    }
    return 0.0;
}

} // namespace draid::core
