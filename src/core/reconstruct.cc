#include "core/reconstruct.h"

#include <cassert>
#include <utility>

namespace draid::core {

RebuildJob::RebuildJob(sim::Simulator &sim, StripeFn fn,
                       std::uint64_t num_stripes, std::uint32_t chunk_bytes,
                       int window)
    : sim_(sim),
      fn_(std::move(fn)),
      numStripes_(num_stripes),
      chunkBytes_(chunk_bytes),
      window_(window)
{
    assert(window_ > 0);
}

void
RebuildJob::start(std::function<void(bool)> done)
{
    onFinished_ = std::move(done);
    startTick_ = sim_.now();
    if (numStripes_ == 0) {
        finished_ = true;
        endTick_ = sim_.now();
        if (onFinished_)
            onFinished_(true);
        return;
    }
    pump();
}

void
RebuildJob::pump()
{
    while (inFlight_ < window_ && next_ < numStripes_) {
        const std::uint64_t stripe = next_++;
        ++inFlight_;
        fn_(stripe, [this](bool ok) { onStripeDone(ok); });
    }
}

void
RebuildJob::onStripeDone(bool ok)
{
    --inFlight_;
    ++done_;
    if (!ok)
        ++failures_;
    if (done_ == numStripes_) {
        finished_ = true;
        endTick_ = sim_.now();
        if (onFinished_)
            onFinished_(failures_ == 0);
        return;
    }
    pump();
}

double
RebuildJob::throughputMBps() const
{
    const sim::Tick dt = (finished_ ? endTick_ : sim_.now()) - startTick_;
    if (dt <= 0)
        return 0.0;
    return static_cast<double>(done_) * chunkBytes_ / sim::toSeconds(dt) /
           1e6;
}

} // namespace draid::core
