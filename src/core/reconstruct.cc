#include "core/reconstruct.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "telemetry/trace.h"

namespace draid::core {

RebuildJob::RebuildJob(sim::Simulator &sim, StripeFn fn,
                       std::uint64_t num_stripes, std::uint32_t chunk_bytes,
                       int window)
    : sim_(sim),
      fn_(std::move(fn)),
      numStripes_(num_stripes),
      chunkBytes_(chunk_bytes),
      window_(window)
{
    assert(window_ > 0);
}

void
RebuildJob::start(std::function<void(bool)> done)
{
    onFinished_ = std::move(done);
    startTick_ = sim_.now();
    if (journal_) {
        journal_->record(telemetry::EventType::kRebuildStarted,
                         journalNode_, sim_.now().raw(), numStripes_, chunkBytes_);
    }
    if (numStripes_ == 0) {
        finished_ = true;
        endTick_ = sim_.now();
        if (journal_) {
            journal_->record(telemetry::EventType::kRebuildCompleted,
                             journalNode_, sim_.now().raw(), 0, 0);
        }
        if (onFinished_)
            onFinished_(true);
        return;
    }
    pump();
}

void
RebuildJob::bindTrace(telemetry::Tracer *tracer, sim::NodeId node)
{
    tracer_ = tracer;
    traceNode_ = node;
}

void
RebuildJob::bindJournal(telemetry::EventJournal *journal, sim::NodeId node)
{
    journal_ = journal;
    journalNode_ = node;
    progressStride_ = std::max<std::uint64_t>(numStripes_ / 8, 1);
}

void
RebuildJob::registerMetrics(telemetry::MetricScope scope)
{
    scope.probe("stripes_done", [this] { return done_; });
    scope.probe("failures", [this] { return failures_; });
    scope.probe("in_flight",
                [this] { return static_cast<std::uint64_t>(inFlight_); });
}

void
RebuildJob::pump()
{
    while (inFlight_ < window_ && next_ < numStripes_) {
        const std::uint64_t stripe = next_++;
        ++inFlight_;
        const bool traced = tracer_ && tracer_->active();
        const std::uint64_t trace = traced ? tracer_->mint() : 0;
        const sim::Ticks issued = sim_.now();
        fn_(stripe, [this, stripe, trace, issued](bool ok) {
            if (trace != 0 && tracer_ && tracer_->active()) {
                telemetry::TraceSpan span;
                span.traceId = trace;
                span.node = traceNode_;
                span.lane = "rebuild";
                span.name = "rebuild.stripe";
                span.start = issued.raw();
                span.end = sim_.now().raw();
                span.args.emplace_back("stripe", std::to_string(stripe));
                span.args.emplace_back("ok", ok ? "1" : "0");
                tracer_->recordSpan(std::move(span));
            }
            if (!ok && stripeFailed_)
                stripeFailed_(stripe);
            onStripeDone(ok);
        });
    }
}

void
RebuildJob::onStripeDone(bool ok)
{
    --inFlight_;
    ++done_;
    if (!ok)
        ++failures_;
    if (done_ == numStripes_) {
        finished_ = true;
        endTick_ = sim_.now();
        if (journal_) {
            journal_->record(telemetry::EventType::kRebuildCompleted,
                             journalNode_, sim_.now().raw(), done_, failures_);
        }
        if (onFinished_)
            onFinished_(failures_ == 0);
        return;
    }
    if (journal_ && progressStride_ > 0 && done_ % progressStride_ == 0) {
        journal_->record(telemetry::EventType::kRebuildProgress,
                         journalNode_, sim_.now().raw(), done_, numStripes_);
    }
    pump();
}

double
RebuildJob::throughputMBps() const
{
    const sim::Ticks dt = (finished_ ? endTick_ : sim_.now()) - startTick_;
    if (dt <= sim::Ticks::zero())
        return 0.0;
    return static_cast<double>(done_) * chunkBytes_ / sim::toSeconds(dt) /
           1e6;
}

} // namespace draid::core
