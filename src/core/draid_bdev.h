/**
 * @file
 * The dRAID server-side controller (paper §3, §5, §6): a dRAID bdev.
 *
 * Extends the plain NVMe-oF target with the four dRAID opcodes:
 *  - PartialWrite (Algorithm 1): fetch new data from the host and read old
 *    data from the drive *in parallel*, derive the partial parity, then
 *    overlap the drive write with partial-parity forwarding (§5.3
 *    pipeline) and report its own completion to the host.
 *  - Parity (Algorithm 2): reduce incoming partial parities; the reduce
 *    proceeds even when the Parity command arrives late (§5.2), only the
 *    final persist waits for it.
 *  - Reconstruction (§6.1): read the union of the requested and the
 *    reconstructed segment in a single drive I/O, return requested data
 *    directly to the host, and route partial results to the reducer.
 *  - Peer: pull a partial result announced by a peer bdev and fold it in.
 *
 * A bdev is unaware of being part of a RAID: every command carries all the
 * information it needs (forward ranges, destinations, wait counts, Q
 * coefficients).
 */

#ifndef DRAID_CORE_DRAID_BDEV_H
#define DRAID_CORE_DRAID_BDEV_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "blockdev/nvmf_target.h"
#include "core/draid.h"
#include "core/reduce_engine.h"

namespace draid::core {

/** Per-bdev traffic and operation counters used by benches and tests. */
struct BdevCounters
{
    std::uint64_t partialWrites = 0;
    std::uint64_t parityCmds = 0;
    std::uint64_t peersAbsorbed = 0;
    std::uint64_t reconstructions = 0;
    std::uint64_t reductionsFinished = 0;
    std::uint64_t lateParityCmds = 0; ///< Parity arrived after >=1 peer
};

/** The server-side controller for one storage server. */
class DraidBdev : public blockdev::NvmfTarget
{
  public:
    DraidBdev(cluster::Cluster &cluster, std::uint32_t index,
              const DraidOptions &options);

    void onMessage(const net::Message &msg) override;

    const BdevCounters &counters() const { return counters_; }
    ReduceEngine &reduceEngine() { return reduce_; }

  private:
    // --- PartialWrite (Algorithm 1 + §5.3 pipeline) ---
    void handlePartialWrite(const net::Message &msg);
    void partialWritePhase2(const proto::Capsule &cmd, sim::NodeId from,
                            ec::Buffer new_data, ec::Buffer old_data,
                            ec::Buffer old_head, ec::Buffer old_tail);

    // --- Parity / Peer (Algorithm 2) ---
    void handleParity(const net::Message &msg);
    void handlePeer(const net::Message &msg);
    void absorbContribution(std::uint64_t key, std::uint32_t offset,
                            ec::Buffer data, bool counted,
                            std::uint64_t trace = 0);
    void maybeFinish(std::uint64_t key);

    /** Barrier-mode ablation: reduce once the full partial set arrived. */
    void tryBarrierFlush(std::uint64_t key);

    // --- Reconstruction (§6.1) ---
    void handleReconstruction(const net::Message &msg);

    // --- shared helpers ---
    /**
     * Announce a partial result to @p dest. When peer-to-peer forwarding
     * is disabled, @p relay (the host) carries it instead: the capsule's
     * next-dest still names the true destination and the host re-announces
     * it, spending its own NIC bandwidth both ways.
     */
    void forwardPartial(std::uint64_t op_id, sim::NodeId dest,
                        sim::NodeId relay, std::uint32_t fwd_offset,
                        ec::Buffer partial, std::uint16_t data_idx,
                        std::uint64_t trace = 0);

    /** Apply the Q coefficient g^idx to a partial result (CPU-charged). */
    void applyQCoefficient(ec::Buffer &partial, std::uint16_t idx);

    /** Completion routing for commands this bdev itself issued. */
    void handleSelfCompletion(const net::Message &msg);

    /** Issue a standard write to another node (rebuild spare writes). */
    void writeToPeer(sim::NodeId dest, std::uint64_t offset, ec::Buffer data,
                     std::function<void(proto::Status)> done,
                     std::uint64_t trace = 0);

    DraidOptions opts_;
    ReduceEngine reduce_;
    BdevCounters counters_;

    /** Pending self-initiated commands, keyed by command id. */
    std::unordered_map<std::uint64_t,
                       // draid-lint: cap(in-flight self-commands; host queue depth)
                       std::function<void(proto::Status)>> selfPending_;
    std::uint64_t selfNext_ = 1;

    /**
     * Barrier-mode stash (nonBlockingReduce == false): contributions that
     * arrived before the host command, absorbed once it shows up.
     */
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<std::uint32_t, ec::Buffer>>>
        // draid-lint: cap(one stash per in-flight write op; host queue depth)
        stashed_;
};

} // namespace draid::core

#endif // DRAID_CORE_DRAID_BDEV_H
