#include "core/reduce_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "ec/xor_kernel.h"

namespace draid::core {

ReduceSession &
ReduceEngine::obtain(std::uint64_t key)
{
    auto [it, created] = sessions_.try_emplace(key);
    if (created)
        ++stats_.sessionsCreated;
    return it->second;
}

ReduceSession *
ReduceEngine::find(std::uint64_t key)
{
    auto it = sessions_.find(key);
    return it == sessions_.end() ? nullptr : &it->second;
}

void
ReduceEngine::erase(std::uint64_t key)
{
    auto it = sessions_.find(key);
    if (it == sessions_.end())
        return;
    stats_.partialsAbsorbed += it->second.absorbed;
    stats_.bytesAbsorbed += it->second.bytesAbsorbed;
    sessions_.erase(it);
}

namespace {

/** Grow the accumulator so it covers [0, end). New bytes are zero. */
void
ensureCapacity(ReduceSession &s, std::uint32_t end)
{
    if (end <= s.accEnd && !s.acc.empty())
        return;
    const std::uint32_t new_end = std::max(end, s.accEnd);
    ec::Buffer grown(new_end);
    if (!s.acc.empty())
        std::memcpy(grown.data(), s.acc.data(), s.accEnd);
    s.acc = grown;
    s.accEnd = new_end;
}

} // namespace

void
ReduceEngine::absorb(ReduceSession &s, std::uint32_t offset,
                     const ec::Buffer &data)
{
    absorbNoCount(s, offset, data);
    --s.remaining;
}

void
ReduceEngine::absorbNoCount(ReduceSession &s, std::uint32_t offset,
                            const ec::Buffer &data)
{
    ensureCapacity(s, offset + static_cast<std::uint32_t>(data.size()));
    ec::xorInto(s.acc.data() + offset, data.data(), data.size());
    ++s.absorbed;
    s.bytesAbsorbed += data.size();
}

bool
ReduceEngine::readyToFinish(const ReduceSession &s)
{
    return s.hostCmdSeen && s.remaining == 0 && !s.preloadPending;
}

ec::Buffer
ReduceEngine::finalWindow(const ReduceSession &s)
{
    assert(s.baseOffset + s.length <= s.accEnd);
    return s.acc.slice(s.baseOffset, s.length);
}

} // namespace draid::core
