/**
 * @file
 * RebuildJob: drives the reconstruction of a failed drive onto a spare,
 * stripe by stripe, with a bounded in-flight window (paper §6, Fig. 17a).
 *
 * The job is system-agnostic: it calls a per-stripe reconstruction
 * function, so the same driver measures dRAID (peer-to-peer reduce into
 * the spare) and the host-centric baselines.
 */

#ifndef DRAID_CORE_RECONSTRUCT_H
#define DRAID_CORE_RECONSTRUCT_H

#include <cstdint>
#include <functional>

#include "sim/simulator.h"
#include "sim/types.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics.h"

namespace draid::telemetry {
class Tracer;
}

namespace draid::core {

/** Background rebuild of one failed device. */
class RebuildJob
{
  public:
    /** Reconstructs the failed chunk of one stripe; reports success. */
    using StripeFn =
        std::function<void(std::uint64_t, std::function<void(bool)>)>;

    /**
     * @param sim          owning simulator
     * @param fn           per-stripe reconstruction
     * @param num_stripes  stripes to rebuild
     * @param chunk_bytes  bytes recovered per stripe (for throughput)
     * @param window       maximum stripes in flight
     */
    RebuildJob(sim::Simulator &sim, StripeFn fn, std::uint64_t num_stripes,
               std::uint32_t chunk_bytes, int window = 8);

    /** Begin rebuilding; @p done fires when every stripe has been tried. */
    void start(std::function<void(bool)> done);

    /**
     * Attach a span sink: each stripe's issue-to-completion window is
     * recorded as a "rebuild.stripe" span on node @p node (lane
     * "rebuild"). No-op cost when the tracer is disabled.
     */
    void bindTrace(telemetry::Tracer *tracer, sim::NodeId node);

    /** Register progress probes (stripes_done, failures, in_flight). */
    void registerMetrics(telemetry::MetricScope scope);

    /**
     * Attach the cluster event journal: the job then emits
     * RebuildStarted / RebuildProgress (roughly every eighth of the job)
     * / RebuildCompleted records as node @p node. Observe-only.
     */
    void bindJournal(telemetry::EventJournal *journal, sim::NodeId node);

    /**
     * Injectable fault hook (fault campaigns): called with the stripe
     * index whenever a stripe's reconstruction reports failure, before
     * the job's own failure accounting. Lets a campaign promote the
     * stripe to data loss while the rebuild keeps sweeping.
     */
    void onStripeFailed(std::function<void(std::uint64_t)> hook)
    {
        stripeFailed_ = std::move(hook);
    }

    std::uint64_t stripesDone() const { return done_; }
    std::uint64_t failures() const { return failures_; }

    /** Rebuilt bytes per second over the job's lifetime, in MB/s. */
    double throughputMBps() const;

    bool finished() const { return finished_; }

  private:
    void pump();
    void onStripeDone(bool ok);

    sim::Simulator &sim_;
    StripeFn fn_;
    telemetry::Tracer *tracer_ = nullptr;
    sim::NodeId traceNode_ = 0;
    telemetry::EventJournal *journal_ = nullptr;
    sim::NodeId journalNode_ = 0;
    std::uint64_t progressStride_ = 0;
    std::uint64_t numStripes_;
    std::uint32_t chunkBytes_;
    int window_;

    std::uint64_t next_ = 0;
    std::uint64_t done_ = 0;
    std::uint64_t failures_ = 0;
    int inFlight_ = 0;
    bool finished_ = false;
    sim::Ticks startTick_;
    sim::Ticks endTick_;
    std::function<void(bool)> onFinished_;
    std::function<void(std::uint64_t)> stripeFailed_;
};

} // namespace draid::core

#endif // DRAID_CORE_RECONSTRUCT_H
