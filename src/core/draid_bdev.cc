#include "core/draid_bdev.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <utility>

#include "ec/gf256.h"
#include "ec/xor_kernel.h"

namespace draid::core {

DraidBdev::DraidBdev(cluster::Cluster &cluster, std::uint32_t index,
                     const DraidOptions &options)
    : NvmfTarget(cluster, index), opts_(options)
{
    // Expose the bdev and reduce-engine tallies as registry probes under
    // this node's scope; the structs stay the source of truth.
    auto scope = cluster_.nodeScope(node_.id()).scope("bdev");
    scope.probe("partial_writes", [this] { return counters_.partialWrites; });
    scope.probe("parity_cmds", [this] { return counters_.parityCmds; });
    scope.probe("peers_absorbed", [this] { return counters_.peersAbsorbed; });
    scope.probe("reconstructions",
                [this] { return counters_.reconstructions; });
    scope.probe("reductions_finished",
                [this] { return counters_.reductionsFinished; });
    scope.probe("late_parity_cmds",
                [this] { return counters_.lateParityCmds; });
    auto reduce = cluster_.nodeScope(node_.id()).scope("reduce");
    reduce.probe("sessions_created",
                 [this] { return reduce_.stats().sessionsCreated; });
    reduce.probe("partials_absorbed",
                 [this] { return reduce_.stats().partialsAbsorbed; });
    reduce.probe("bytes_absorbed",
                 [this] { return reduce_.stats().bytesAbsorbed; });
}

void
DraidBdev::onMessage(const net::Message &msg)
{
    switch (msg.capsule.opcode) {
      case proto::Opcode::kPartialWrite:
        handlePartialWrite(msg);
        break;
      case proto::Opcode::kParity:
        handleParity(msg);
        break;
      case proto::Opcode::kPeer:
        handlePeer(msg);
        break;
      case proto::Opcode::kReconstruction:
        handleReconstruction(msg);
        break;
      case proto::Opcode::kCompletion:
        handleSelfCompletion(msg);
        break;
      default:
        NvmfTarget::onMessage(msg);
        break;
    }
}

// ---------------------------------------------------------------------------
// PartialWrite (Algorithm 1 + §5.3 pipeline)
// ---------------------------------------------------------------------------

void
DraidBdev::handlePartialWrite(const net::Message &msg)
{
    ++counters_.partialWrites;
    const auto cmd = msg.capsule;
    const auto from = msg.from;
    auto payload = msg.payload;

    node_.cpu().execute(cluster_.config().serverCmdCost, cmd.traceId,
                        "srv.cmd", [this, cmd, from, payload]() {
        assert(!cmd.sgList.empty());
        const std::uint64_t chunk_addr = cmd.sgList[0].addr;
        const std::uint32_t chunk_len = cmd.sgList[0].length;

        // Collect the phase-1 I/Os: remote fetch + drive read(s). With the
        // pipeline enabled (§5.3) they all launch at once; without it they
        // run strictly one after another (conventional NVMe-oF ordering).
        struct Phase1
        {
            int outstanding = 0;
            std::size_t next = 0;
            // draid-lint: cap(deferred sub-commands of one op; at most stripe width)
            std::vector<std::function<void()>> serialQueue;
            ec::Buffer newData;
            ec::Buffer oldData;
            ec::Buffer oldHead;
            ec::Buffer oldTail;
        };
        auto ph = std::make_shared<Phase1>();
        auto join = [this, ph, cmd, from]() {
            if (--ph->outstanding == 0) {
                ph->serialQueue.clear(); // break shared_ptr cycle
                partialWritePhase2(cmd, from, std::move(ph->newData),
                                   std::move(ph->oldData),
                                   std::move(ph->oldHead),
                                   std::move(ph->oldTail));
            } else if (ph->next < ph->serialQueue.size()) {
                ph->serialQueue[ph->next++]();
            }
        };

        std::vector<std::function<void()>> starts;

        if (cmd.length > 0) {
            ++ph->outstanding;
            ph->newData = payload;
            starts.push_back([this, from, cmd, join]() {
                cluster_.fabric().rdmaRead(node_.id(), from, cmd.length,
                                           join, cmd.traceId);
            });
        }
        switch (cmd.subtype) {
          case proto::Subtype::kRmw:
            // Old data under the write range.
            ++ph->outstanding;
            starts.push_back([this, cmd, ph, join]() {
                node_.ssd().read(cmd.offset, cmd.length, cmd.traceId,
                                 [ph, join](blockdev::IoStatus,
                                            ec::Buffer data) {
                    ph->oldData = std::move(data);
                    join();
                });
            });
            break;
          case proto::Subtype::kRwWrite: {
            // The chunk parts the write does not cover.
            const std::uint32_t head_len =
                static_cast<std::uint32_t>(cmd.offset - chunk_addr);
            const std::uint32_t tail_len =
                chunk_len - head_len - cmd.length;
            if (head_len > 0) {
                ++ph->outstanding;
                starts.push_back([this, cmd, chunk_addr, head_len, ph,
                                  join]() {
                    node_.ssd().read(chunk_addr, head_len, cmd.traceId,
                                     [ph, join](blockdev::IoStatus,
                                                ec::Buffer data) {
                        ph->oldHead = std::move(data);
                        join();
                    });
                });
            }
            if (tail_len > 0) {
                ++ph->outstanding;
                const std::uint64_t tail_addr = cmd.offset + cmd.length;
                starts.push_back([this, cmd, tail_addr, tail_len, ph,
                                  join]() {
                    node_.ssd().read(tail_addr, tail_len, cmd.traceId,
                                     [ph, join](blockdev::IoStatus,
                                                ec::Buffer data) {
                        ph->oldTail = std::move(data);
                        join();
                    });
                });
            }
            break;
          }
          case proto::Subtype::kRwRead:
            // Forward segment read straight from the drive.
            ++ph->outstanding;
            starts.push_back([this, cmd, chunk_addr, ph, join]() {
                node_.ssd().read(chunk_addr + cmd.fwdOffset, cmd.fwdLength,
                                 cmd.traceId,
                                 [ph, join](blockdev::IoStatus,
                                            ec::Buffer data) {
                    ph->oldData = std::move(data);
                    join();
                });
            });
            break;
          default:
            assert(false && "bad PartialWrite subtype");
        }

        assert(ph->outstanding > 0);
        if (opts_.pipeline) {
            // Launch everything at once: remote fetch overlaps drive reads.
            for (auto &start : starts)
                start();
        } else {
            // Serial: each I/O starts when the previous one completes
            // (join() advances the queue until all are outstanding-done).
            ph->serialQueue = std::move(starts);
            ph->next = 1;
            ph->serialQueue[0]();
        }
    });
}

void
DraidBdev::partialWritePhase2(const proto::Capsule &cmd, sim::NodeId from,
                              ec::Buffer new_data, ec::Buffer old_data,
                              ec::Buffer old_head, ec::Buffer old_tail)
{
    const std::uint64_t chunk_addr = cmd.sgList[0].addr;
    const std::uint32_t chunk_len = cmd.sgList[0].length;
    const auto &cfg = cluster_.config();

    // Derive the partial parity and the CPU cost of doing so.
    ec::Buffer partial;
    std::uint64_t xor_bytes = 0;
    switch (cmd.subtype) {
      case proto::Subtype::kRmw:
        partial = ec::xorOf(old_data, new_data);
        xor_bytes = partial.size();
        break;
      case proto::Subtype::kRwWrite: {
        // Assemble the chunk's post-write content: head + new + tail.
        partial = ec::Buffer(chunk_len);
        const std::uint32_t head_len =
            static_cast<std::uint32_t>(cmd.offset - chunk_addr);
        if (!old_head.empty())
            std::memcpy(partial.data(), old_head.data(), old_head.size());
        std::memcpy(partial.data() + head_len, new_data.data(),
                    new_data.size());
        if (!old_tail.empty())
            std::memcpy(partial.data() + head_len + new_data.size(),
                        old_tail.data(), old_tail.size());
        break;
      }
      case proto::Subtype::kRwRead:
        partial = std::move(old_data);
        break;
      default:
        assert(false);
    }

    node_.cpu().executeBytes(xor_bytes, cfg.xorBw, sim::Ticks::zero(), cmd.traceId,
                             "parity.xor", [this, cmd, from, new_data,
                                            partial]() mutable {
        const std::uint64_t op = opOf(cmd.commandId);

        const sim::NodeId relay =
            opts_.p2pForwarding ? sim::kInvalidNode : from;
        auto do_forward = [this, cmd, relay, partial]() {
            if (cmd.nextDest != sim::kInvalidNode) {
                forwardPartial(opOf(cmd.commandId), cmd.nextDest, relay,
                               cmd.fwdOffset, partial, cmd.dataIdx,
                               cmd.traceId);
            }
            if (cmd.nextDest2 != sim::kInvalidNode) {
                // Q-bound copy: apply g^idx at the sender so the reducer
                // stays a pure XOR machine (late-Parity safe).
                ec::Buffer qcopy = partial.clone();
                applyQCoefficient(qcopy, cmd.dataIdx);
                node_.cpu().executeBytes(
                    qcopy.size(), cluster_.config().gfBw, sim::Ticks::zero(), cmd.traceId,
                    "parity.gf", [this, cmd, relay, qcopy]() {
                        forwardPartial(opOf(cmd.commandId), cmd.nextDest2,
                                       relay, cmd.fwdOffset, qcopy,
                                       cmd.dataIdx, cmd.traceId);
                    });
            }
        };
        auto do_write = [this, cmd, from, new_data]() {
            if (cmd.length == 0)
                return;
            node_.ssd().write(cmd.offset, new_data, cmd.traceId,
                              [this, cmd, from](blockdev::IoStatus st) {
                sendCompletion(from, cmd.commandId,
                               st == blockdev::IoStatus::kOk
                                   ? proto::Status::kSuccess
                                   : proto::Status::kFailed,
                               {}, cmd.traceId);
            });
        };

        (void)op;
        if (opts_.pipeline) {
            // §5.3: the drive write overlaps partial-parity forwarding.
            do_forward();
            do_write();
        } else {
            // Serial: persist first, then forward (pre-pipeline design).
            if (cmd.length == 0) {
                do_forward();
                return;
            }
            node_.ssd().write(cmd.offset, new_data, cmd.traceId,
                              [this, cmd, from,
                               do_forward](blockdev::IoStatus st) {
                do_forward();
                sendCompletion(from, cmd.commandId,
                               st == blockdev::IoStatus::kOk
                                   ? proto::Status::kSuccess
                                   : proto::Status::kFailed,
                               {}, cmd.traceId);
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Parity / Peer reduce (Algorithm 2)
// ---------------------------------------------------------------------------

void
DraidBdev::handleParity(const net::Message &msg)
{
    ++counters_.parityCmds;
    const auto cmd = msg.capsule;
    const auto from = msg.from;
    auto payload = msg.payload;

    node_.cpu().execute(cluster_.config().serverCmdCost, cmd.traceId,
                        "srv.cmd", [this, cmd, from, payload]() {
        const std::uint64_t key = opOf(cmd.commandId);
        auto &s = reduce_.obtain(key);
        if (s.absorbed > 0)
            ++counters_.lateParityCmds;
        s.hostCmdSeen = true;
        s.kind = SessionKind::kParity;
        s.subtype = cmd.subtype;
        s.baseOffset = cmd.fwdOffset;
        s.length = cmd.fwdLength;
        s.chunkDeviceAddr = cmd.offset - cmd.fwdOffset;
        s.replyTo = from;
        s.hostCmdId = cmd.commandId;
        s.remaining += cmd.waitNum;
        s.traceId = cmd.traceId;

        if (cmd.subtype == proto::Subtype::kRmw) {
            // Preload and fold in the old parity window.
            s.preloadPending = true;
            node_.ssd().read(cmd.offset, cmd.length, cmd.traceId,
                             [this, key, cmd](blockdev::IoStatus,
                                              ec::Buffer data) {
                node_.cpu().executeBytes(
                    data.size(), cluster_.config().xorBw, sim::Ticks::zero(), cmd.traceId,
                    "reduce.xor", [this, key, cmd, data]() {
                        auto *sess = reduce_.find(key);
                        if (!sess)
                            return;
                        ReduceEngine::absorbNoCount(*sess, cmd.fwdOffset,
                                                    data);
                        sess->preloadPending = false;
                        maybeFinish(key);
                    });
            });
        }

        if (!payload.empty()) {
            // Degraded reconstruct-write: the host contributes the failed
            // chunk's new content itself (pulled like any other partial).
            cluster_.fabric().rdmaRead(node_.id(), from, payload.size(),
                                       [this, key, cmd, payload]() {
                absorbContribution(key, cmd.fwdOffset, payload, true,
                                   cmd.traceId);
            }, cmd.traceId);
        }

        // Barrier-mode ablation: reduction may only start once every
        // expected Peer partial has arrived.
        if (!opts_.nonBlockingReduce) {
            s.barrierExpect = static_cast<int>(cmd.waitNum) -
                              (payload.empty() ? 0 : 1);
            tryBarrierFlush(key);
        }

        maybeFinish(key);
    });
}

void
DraidBdev::tryBarrierFlush(std::uint64_t key)
{
    auto *s = reduce_.find(key);
    if (!s || !s->hostCmdSeen || s->barrierExpect < 0)
        return;
    auto it = stashed_.find(key);
    const std::size_t have = it == stashed_.end() ? 0 : it->second.size();
    if (static_cast<int>(have) < s->barrierExpect)
        return;
    if (it != stashed_.end()) {
        auto pending = std::move(it->second);
        stashed_.erase(it);
        for (auto &[off, buf] : pending)
            absorbContribution(key, off, std::move(buf), true, s->traceId);
    }
    if (s->barrierExpect == 0)
        maybeFinish(key);
}

void
DraidBdev::handlePeer(const net::Message &msg)
{
    const auto cmd = msg.capsule;
    const auto from = msg.from;
    auto payload = msg.payload;

    node_.cpu().execute(cluster_.config().serverCmdCost, cmd.traceId,
                        "srv.cmd", [this, cmd, from, payload]() {
        const std::uint64_t key = opOf(cmd.commandId);
        // Pull the announced partial from the peer.
        cluster_.fabric().rdmaRead(node_.id(), from, cmd.fwdLength,
                                   [this, key, cmd, payload]() {
            if (!opts_.nonBlockingReduce) {
                // Barrier ablation: hold every partial until the full set
                // is present, then reduce serially.
                stashed_[key].emplace_back(cmd.fwdOffset, payload);
                tryBarrierFlush(key);
                return;
            }
            absorbContribution(key, cmd.fwdOffset, payload, true,
                               cmd.traceId);
        }, cmd.traceId);
    });
}

void
DraidBdev::absorbContribution(std::uint64_t key, std::uint32_t offset,
                              ec::Buffer data, bool counted,
                              std::uint64_t trace)
{
    node_.cpu().executeBytes(data.size(), cluster_.config().xorBw, sim::Ticks::zero(), trace,
                             "reduce.xor",
                             [this, key, offset, data, counted]() {
        auto &s = reduce_.obtain(key);
        if (counted)
            ReduceEngine::absorb(s, offset, data);
        else
            ReduceEngine::absorbNoCount(s, offset, data);
        ++counters_.peersAbsorbed;
        maybeFinish(key);
    });
}

void
DraidBdev::maybeFinish(std::uint64_t key)
{
    auto *s = reduce_.find(key);
    if (!s || !ReduceEngine::readyToFinish(*s))
        return;

    ++counters_.reductionsFinished;
    ec::Buffer window = ReduceEngine::finalWindow(*s);
    const auto reply_to = s->replyTo;
    const auto cmd_id = s->hostCmdId;
    const auto addr = s->chunkDeviceAddr + s->baseOffset;
    const auto spare = s->spareDest;
    const auto kind = s->kind;
    const auto trace = s->traceId;
    reduce_.erase(key);

    if (kind == SessionKind::kParity) {
        node_.ssd().write(addr, window, trace,
                          [this, reply_to, cmd_id,
                           trace](blockdev::IoStatus st) {
            sendCompletion(reply_to, cmd_id,
                           st == blockdev::IoStatus::kOk
                               ? proto::Status::kSuccess
                               : proto::Status::kFailed,
                           {}, trace);
        });
        return;
    }

    // Reconstruction: deliver the rebuilt segment.
    if (spare != sim::kInvalidNode) {
        // Rebuild: write straight to the spare, then report to the host.
        writeToPeer(spare, addr, window,
                    [this, reply_to, cmd_id, trace](proto::Status st) {
                        sendCompletion(reply_to, cmd_id, st, {}, trace);
                    }, trace);
        return;
    }
    cluster_.fabric().rdmaWrite(node_.id(), reply_to, window.size(),
                                [this, reply_to, cmd_id, window, trace]() {
        sendCompletion(reply_to, cmd_id, proto::Status::kSuccess, window,
                       trace);
    }, trace);
}

// ---------------------------------------------------------------------------
// Reconstruction (§6.1)
// ---------------------------------------------------------------------------

void
DraidBdev::handleReconstruction(const net::Message &msg)
{
    ++counters_.reconstructions;
    const auto cmd = msg.capsule;
    const auto from = msg.from;

    node_.cpu().execute(cluster_.config().serverCmdCost, cmd.traceId,
                        "srv.cmd", [this, cmd, from]() {
        assert(!cmd.sgList.empty());
        const std::uint64_t chunk_addr = cmd.sgList[0].addr;
        const std::uint64_t recon_lo = chunk_addr + cmd.fwdOffset;
        const std::uint64_t recon_hi = recon_lo + cmd.fwdLength;

        // §6.1: one drive I/O covering the union (including any gap).
        std::uint64_t lo = recon_lo, hi = recon_hi;
        const bool also_read =
            cmd.subtype == proto::Subtype::kAlsoRead && cmd.length > 0;
        if (also_read) {
            lo = std::min(lo, cmd.offset);
            hi = std::max(hi, cmd.offset + cmd.length);
        }

        node_.ssd().read(lo, static_cast<std::uint32_t>(hi - lo),
                         cmd.traceId,
                         [this, cmd, from, lo, recon_lo,
                          also_read](blockdev::IoStatus st, ec::Buffer data) {
            if (st != blockdev::IoStatus::kOk) {
                // Media error (e.g. a latent sector error on a survivor):
                // this participant cannot contribute, so the stripe cannot
                // be reconstructed. Fail the host's reducer sub-operation
                // directly — completeSub() finishes the op on the first
                // failed sub, and any later completion from the actual
                // reducer is dropped as stale.
                sendCompletion(from, makeCmdId(opOf(cmd.commandId),
                                               kReducerSub),
                               proto::Status::kFailed, {}, cmd.traceId);
                if (also_read) {
                    sendCompletion(from, cmd.commandId,
                                   proto::Status::kFailed, {}, cmd.traceId);
                }
                return;
            }
            ec::Buffer recon = data.slice(
                static_cast<std::size_t>(recon_lo - lo), cmd.fwdLength);
            if (cmd.subtype == proto::Subtype::kNoReadQ) {
                // Q-parity rebuild: contribute g^idx * chunk.
                applyQCoefficient(recon, cmd.dataIdx);
            }

            const bool is_reducer = cmd.waitNum > 0;
            if (is_reducer) {
                const std::uint64_t key = opOf(cmd.commandId);
                auto &s = reduce_.obtain(key);
                s.hostCmdSeen = true;
                s.kind = SessionKind::kReconstruct;
                s.baseOffset = cmd.fwdOffset;
                s.length = cmd.fwdLength;
                s.chunkDeviceAddr = cmd.sgList[0].addr;
                s.replyTo = from;
                s.hostCmdId = makeCmdId(key, kReducerSub);
                s.remaining += cmd.waitNum;
                s.traceId = cmd.traceId;
                if (cmd.nextDest != from)
                    s.spareDest = cmd.nextDest;
                // Fold in our own chunk's contribution locally. The
                // absorb runs through the CPU queue behind any peer
                // partials already waiting there, so completion must be
                // blocked on it: otherwise the last peer's absorb can
                // drive `remaining` to zero and persist a reduction that
                // is missing this very chunk.
                s.preloadPending = true;
                node_.cpu().executeBytes(
                    recon.size(), cluster_.config().xorBw, sim::Ticks::zero(), cmd.traceId,
                    "reduce.xor", [this, key, off = cmd.fwdOffset, recon]() {
                        auto *sess = reduce_.find(key);
                        if (!sess)
                            return;
                        ReduceEngine::absorbNoCount(*sess, off, recon);
                        ++counters_.peersAbsorbed;
                        sess->preloadPending = false;
                        maybeFinish(key);
                    });
            } else {
                // §6.1: prioritize the partial over the direct read path.
                forwardPartial(opOf(cmd.commandId), cmd.nextDest,
                               opts_.p2pForwarding ? sim::kInvalidNode
                                                   : from,
                               cmd.fwdOffset, recon, cmd.dataIdx,
                               cmd.traceId);
            }

            if (also_read) {
                ec::Buffer direct = data.slice(
                    static_cast<std::size_t>(cmd.offset - lo), cmd.length);
                cluster_.fabric().rdmaWrite(node_.id(), from, direct.size(),
                                            [this, cmd, from, direct]() {
                    sendCompletion(from, cmd.commandId,
                                   proto::Status::kSuccess, direct,
                                   cmd.traceId);
                }, cmd.traceId);
            }
        });
    });
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

void
DraidBdev::forwardPartial(std::uint64_t op_id, sim::NodeId dest,
                          sim::NodeId relay, std::uint32_t fwd_offset,
                          ec::Buffer partial, std::uint16_t data_idx,
                          std::uint64_t trace)
{
    proto::Capsule peer;
    peer.opcode = proto::Opcode::kPeer;
    peer.commandId = makeCmdId(op_id, static_cast<std::uint8_t>(index_));
    peer.fwdOffset = fwd_offset;
    peer.fwdLength = static_cast<std::uint32_t>(partial.size());
    peer.nextDest = dest;
    peer.dataIdx = data_idx;
    peer.traceId = trace;
    const sim::NodeId to = relay != sim::kInvalidNode ? relay : dest;
    cluster_.fabric().send(net::Message{node_.id(), to, std::move(peer),
                                        std::move(partial)});
}

void
DraidBdev::applyQCoefficient(ec::Buffer &partial, std::uint16_t idx)
{
    const auto &gf = ec::Gf256::instance();
    ec::Buffer out(partial.size());
    gf.mulBlock(gf.pow2(idx), partial.data(), out.data(), out.size());
    partial = std::move(out);
}

void
DraidBdev::handleSelfCompletion(const net::Message &msg)
{
    auto it = selfPending_.find(msg.capsule.commandId);
    if (it == selfPending_.end())
        return; // stale or not ours
    auto done = std::move(it->second);
    selfPending_.erase(it);
    done(msg.capsule.status);
}

void
DraidBdev::writeToPeer(sim::NodeId dest, std::uint64_t offset,
                       ec::Buffer data,
                       std::function<void(proto::Status)> done,
                       std::uint64_t trace)
{
    const std::uint64_t id = makeCmdId(selfNext_++, 0xfe);
    proto::Capsule c;
    c.opcode = proto::Opcode::kWrite;
    c.commandId = id;
    c.offset = offset;
    c.length = static_cast<std::uint32_t>(data.size());
    c.traceId = trace;
    selfPending_[id] = std::move(done);
    cluster_.fabric().send(net::Message{node_.id(), dest, std::move(c),
                                        std::move(data)});
}

} // namespace draid::core
