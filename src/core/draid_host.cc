#include "core/draid_host.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "core/draid_bdev.h"
#include "ec/gf256.h"
#include "ec/raid5_codec.h"
#include "ec/raid6_codec.h"

namespace draid::core {

namespace {

/** Build a geometry from options + width. */
raid::Geometry
makeGeometry(const DraidOptions &o, std::uint32_t width)
{
    return raid::Geometry(o.level, o.chunkSize, width);
}

} // namespace

DraidHost::DraidHost(cluster::Cluster &cluster, const DraidOptions &options,
                     std::uint32_t width)
    : cluster_(cluster),
      opts_(options),
      width_(width == 0 ? cluster.numTargets() : width),
      geom_(makeGeometry(options, width_)),
      planner_(geom_),
      initiator_(cluster, ids_),
      deadlines_(cluster.sim()),
      rng_(options.seed)
{
    assert(width_ <= cluster.numTargets());
    targetMap_.resize(width_);
    for (std::uint32_t i = 0; i < width_; ++i)
        targetMap_[i] = i;
    cluster_.fabric().setEndpoint(cluster_.hostId(), this);

    setupTelemetry();
    contention_ = &cluster_.telemetry().contention();
    lockRes_ = contention_->registerResource(
        cluster_.hostId(),
        telemetry::ContentionTracker::ResourceKind::StripeLock);
    writeLocks_.bindJournal(&cluster_.telemetry().journal(),
                            cluster_.hostId(),
                            [this] { return cluster_.sim().now().raw(); });
    deadlines_.bindJournal(&cluster_.telemetry().journal(),
                           cluster_.hostId());

    if (opts_.reducerPolicy == ReducerPolicy::kBwAware) {
        auto sel = std::make_unique<BwAwareReducerSelector>(
            cluster_.config().ewmaAlpha);
        bwAware_ = sel.get();
        selector_ = std::move(sel);
        lastTxBytes_.assign(width_, 0);
        reconTxAttributed_.assign(width_, 0);
        // The refresh timer is armed lazily by reconstruction activity
        // (see armBwTimer) so an idle array leaves the event queue empty.
    } else {
        selector_ = std::make_unique<RandomReducerSelector>();
    }
}

void
DraidHost::setupTelemetry()
{
    // The HostCounters struct stays the source of truth (tests read its
    // fields directly); the registry exposes the same storage via probes
    // instead of duplicating the counts.
    auto scope = cluster_.nodeScope(cluster_.hostId()).scope("draid");
    const HostCounters &c = counters_;
    scope.probe("full_stripe_writes", [&c] {
        return static_cast<double>(c.fullStripeWrites);
    });
    scope.probe("rmw_writes",
                [&c] { return static_cast<double>(c.rmwWrites); });
    scope.probe("rcw_writes",
                [&c] { return static_cast<double>(c.rcwWrites); });
    scope.probe("normal_reads",
                [&c] { return static_cast<double>(c.normalReads); });
    scope.probe("degraded_reads",
                [&c] { return static_cast<double>(c.degradedReads); });
    scope.probe("degraded_writes",
                [&c] { return static_cast<double>(c.degradedWrites); });
    scope.probe("retries", [&c] { return static_cast<double>(c.retries); });
    scope.probe("failovers",
                [&c] { return static_cast<double>(c.failovers); });

    readLatencyUs_ = &scope.histogram("read_latency_us",
                                      telemetry::latencyBucketsUs());
    writeLatencyUs_ = &scope.histogram("write_latency_us",
                                       telemetry::latencyBucketsUs());
}

void
DraidHost::finishOpSpan(std::uint64_t trace, const char *name,
                        sim::Ticks start, std::uint64_t bytes,
                        telemetry::Histogram *lat_us)
{
    const sim::Ticks end = cluster_.sim().now();
    if (lat_us)
        lat_us->observe(static_cast<double>((end - start).raw()) /
                        sim::kMicrosecond);
    // Capture the tenant before noteOpComplete releases the binding.
    const std::uint32_t tenant = contention_->tenantOf(trace);
    if (contention_->enabled())
        contention_->noteOpComplete(trace, end.raw(), (end - start).raw(),
                                    bytes);
    telemetry::Tracer &tracer = cluster_.tracer();
    if (trace == 0 || !tracer.active())
        return;
    telemetry::TraceSpan span;
    span.traceId = trace;
    span.node = cluster_.hostId();
    span.lane = "op";
    span.name = name;
    span.start = start.raw();
    span.end = end.raw();
    span.tenant = tenant;
    span.args.emplace_back("bytes", std::to_string(bytes));
    // Root op span: routes through the op-completion path (streaming
    // aggregator sink + tail-exemplar reservoir) before retention.
    tracer.recordOpCompletion(std::move(span));
}

void
DraidHost::recordLockWait(std::uint64_t trace, std::uint64_t stripe,
                          sim::Ticks since)
{
    const sim::Ticks now = cluster_.sim().now();
    if (trace == 0 || now <= since)
        return;
    telemetry::Tracer &tracer = cluster_.tracer();
    if (!tracer.active())
        return;
    telemetry::TraceSpan span;
    span.traceId = trace;
    span.node = cluster_.hostId();
    span.lane = "lock";
    span.name = "lock.stripe";
    span.start = since.raw();
    span.end = now.raw();
    span.tenant = contention_->tenantOf(trace);
    span.args.emplace_back("stripe", std::to_string(stripe));
    tracer.recordSpan(std::move(span));
}

std::uint64_t
DraidHost::sizeBytes() const
{
    const std::uint64_t stripes =
        cluster_.config().ssd.capacity / geom_.chunkSize();
    return stripes * geom_.stripeDataSize();
}

// ---------------------------------------------------------------------------
// Pending-operation bookkeeping
// ---------------------------------------------------------------------------

std::uint64_t
DraidHost::registerOp(std::set<std::uint8_t> subs,
                      std::function<void(std::uint8_t, ec::Buffer)> on_data,
                      std::function<void(bool)> on_done)
{
    const std::uint64_t op = ids_.alloc();
    PendingOp p;
    p.waitingSubs = std::move(subs);
    p.onData = std::move(on_data);
    p.onDone = std::move(on_done);
    pending_.emplace(op, std::move(p));
    deadlines_.arm(op, cluster_.config().opTimeout,
                   [this, op]() { expireOp(op); });
    return op;
}

void
DraidHost::completeSub(std::uint64_t op, std::uint8_t sub, bool ok,
                       ec::Buffer payload)
{
    auto it = pending_.find(op);
    if (it == pending_.end())
        return; // stale completion (op already expired and retried)
    auto &p = it->second;
    if (p.waitingSubs.erase(sub) == 0)
        return; // duplicate
    if (!ok)
        p.anyFailure = true;
    if (p.onData && !payload.empty())
        p.onData(sub, std::move(payload));
    if (p.waitingSubs.empty()) {
        deadlines_.disarm(op);
        auto done = std::move(p.onDone);
        const bool success = !p.anyFailure;
        pending_.erase(it);
        if (done)
            done(success);
    }
}

void
DraidHost::expireOp(std::uint64_t op)
{
    auto it = pending_.find(op);
    if (it == pending_.end())
        return;
    cluster_.telemetry().flightRecorder().noteAbnormal(
        "op.timeout", op, cluster_.hostId(), cluster_.sim().now().raw());
    lastExpiredSubs_ = it->second.waitingSubs;
    auto done = std::move(it->second.onDone);
    pending_.erase(it);
    if (done)
        done(false);
}

// ---------------------------------------------------------------------------
// Fabric endpoint
// ---------------------------------------------------------------------------

void
DraidHost::onMessage(const net::Message &msg)
{
    if (msg.capsule.opcode == proto::Opcode::kPeer) {
        // Host-relay ablation (p2pForwarding == false): pull the partial
        // from the sender and re-announce it to the real destination,
        // spending host NIC bandwidth in both directions.
        const auto cmd = msg.capsule;
        const auto from = msg.from;
        auto payload = msg.payload;
        cluster_.fabric().rdmaRead(cluster_.hostId(), from, cmd.fwdLength,
                                   [this, cmd, payload]() {
            proto::Capsule relay = cmd;
            cluster_.fabric().send(net::Message{cluster_.hostId(),
                                                cmd.nextDest, relay,
                                                payload});
        });
        return;
    }

    if (msg.capsule.opcode != proto::Opcode::kCompletion)
        return; // the host only consumes completions and relayed peers

    if (initiator_.tryComplete(msg))
        return;

    const std::uint64_t op = opOf(msg.capsule.commandId);
    const std::uint8_t sub = subOf(msg.capsule.commandId);
    const bool ok = msg.capsule.status == proto::Status::kSuccess;
    auto payload = msg.payload;
    cluster_.host().cpu().execute(cluster_.config().hostCompletionCost,
                                  msg.capsule.traceId, "host.completion",
                                  [this, op, sub, ok,
                                   payload = std::move(payload)]() mutable {
        completeSub(op, sub, ok, std::move(payload));
    });
}

void
DraidHost::sendCapsule(std::uint32_t device, proto::Capsule capsule,
                       ec::Buffer payload)
{
    const sim::NodeId node = nodeOf(device);
    const std::uint64_t trace = capsule.traceId;
    if (contention_->enabled())
        capsule.tenant = contention_->tenantOf(trace);
    cluster_.host().cpu().execute(cluster_.config().hostCmdCost,
                                  trace, "host.cmd",
                                  [this, node,
                                   capsule = std::move(capsule),
                                   payload = std::move(payload)]() mutable {
        cluster_.fabric().send(net::Message{cluster_.hostId(), node,
                                            std::move(capsule),
                                            std::move(payload)});
    });
}

std::uint32_t
DraidHost::deviceOf(const raid::Extent &e) const
{
    return geom_.dataDevice(e.stripe, e.dataIdx);
}

// ---------------------------------------------------------------------------
// Array management
// ---------------------------------------------------------------------------

void
DraidHost::markFailed(std::uint32_t device)
{
    assert(device < width_);
    failed_ = device;
    cluster_.telemetry().journal().record(telemetry::EventType::kDriveFailed,
                                          cluster_.hostId(),
                                          cluster_.sim().now().raw(), device);
}

void
DraidHost::clearFailed()
{
    if (failed_) {
        cluster_.telemetry().journal().record(
            telemetry::EventType::kDriveRecovered, cluster_.hostId(),
            cluster_.sim().now().raw(), *failed_);
    }
    failed_.reset();
}

void
DraidHost::replaceDevice(std::uint32_t device, std::uint32_t spare_target)
{
    assert(device < width_);
    assert(spare_target < cluster_.numTargets());
    targetMap_[device] = spare_target;
    cluster_.telemetry().journal().record(telemetry::EventType::kHotSpareSwap,
                                          cluster_.hostId(),
                                          cluster_.sim().now().raw(), device,
                                          spare_target);
    if (failed_ && *failed_ == device)
        clearFailed();
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void
DraidHost::write(std::uint64_t offset, ec::Buffer data,
                 blockdev::WriteCallback cb)
{
    assert(offset + data.size() <= sizeBytes());
    const std::uint64_t trace = cluster_.tracer().mint();
    contention_->noteOpStart(trace);
    const sim::Ticks op_start = cluster_.sim().now();
    const std::uint64_t op_bytes = data.size();
    auto plans = planner_.plan(offset, data.size());
    assert(!plans.empty());

    auto remaining = std::make_shared<int>(static_cast<int>(plans.size()));
    auto all_ok = std::make_shared<bool>(true);
    auto wrapped = [this, cb = std::move(cb), trace, op_start,
                    op_bytes](blockdev::IoStatus st) {
        finishOpSpan(trace, "draid.write", op_start, op_bytes,
                     writeLatencyUs_);
        cb(st);
    };

    std::size_t pos = 0;
    for (auto &plan : plans) {
        auto sw = std::make_shared<StripeWrite>();
        sw->plan = plan;
        sw->retriesLeft = opts_.maxRetries;
        sw->traceId = trace;
        for (const auto &seg : plan.writes) {
            sw->segData.push_back(data.slice(pos, seg.length));
            pos += seg.length;
        }
        const std::uint64_t stripe = plan.stripe;
        sw->done = [this, stripe, remaining, all_ok, wrapped](bool ok) {
            // Close the hold window before the release hands the lock to
            // the next waiter, so that waiter's blame split can see it.
            if (contention_->enabled())
                contention_->closeOccupancy(lockRes_,
                                            cluster_.sim().now().raw(),
                                            stripe);
            writeLocks_.release(stripe);
            if (!ok)
                *all_ok = false;
            if (--*remaining == 0)
                wrapped(*all_ok ? blockdev::IoStatus::kOk
                                : blockdev::IoStatus::kError);
        };
        const sim::Ticks lock_req = cluster_.sim().now();
        writeLocks_.acquire(stripe, [this, sw, stripe, lock_req]() {
            if (contention_->enabled()) {
                const sim::Ticks now = cluster_.sim().now();
                // Blame the grant delay on the writers that held the lock
                // (their hold windows tile [lock_req, now) exactly), then
                // open this writer's own hold window.
                contention_->attributeWait(lockRes_, sw->traceId,
                                           lock_req.raw(), now.raw(),
                                           stripe);
                contention_->openOccupancy(lockRes_, sw->traceId,
                                           now.raw(), stripe);
            }
            recordLockWait(sw->traceId, stripe, lock_req);
            executeStripeWrite(sw);
        });
    }
}

void
DraidHost::executeStripeWrite(std::shared_ptr<StripeWrite> sw)
{
    const std::uint64_t stripe = sw->plan.stripe;

    if (!failed_) {
        if (sw->plan.mode == raid::WriteMode::kFullStripe)
            executeFullStripe(sw);
        else
            executePartialStripe(sw);
        return;
    }

    ++counters_.degradedWrites;
    const raid::ChunkRole role = geom_.roleOf(stripe, *failed_);

    if (role == raid::ChunkRole::kParityP) {
        if (geom_.level() == raid::RaidLevel::kRaid5) {
            // No parity to maintain: plain writes of the data segments.
            executeParityLessWrite(sw);
        } else {
            // Keep Q, skip P.
            if (sw->plan.mode == raid::WriteMode::kFullStripe)
                executeFullStripe(sw);
            else
                executePartialStripe(sw);
        }
        return;
    }
    if (role == raid::ChunkRole::kParityQ) {
        // Q lost: run the ordinary (P-only) flow.
        if (sw->plan.mode == raid::WriteMode::kFullStripe)
            executeFullStripe(sw);
        else
            executePartialStripe(sw);
        return;
    }

    // Failed device holds a data chunk of this stripe.
    const std::uint32_t fidx = geom_.dataIndexOf(stripe, *failed_);
    const auto written =
        std::find_if(sw->plan.writes.begin(), sw->plan.writes.end(),
                     [fidx](const raid::WriteSegment &s) {
                         return s.dataIdx == fidx;
                     });

    if (sw->plan.mode == raid::WriteMode::kFullStripe) {
        executeFullStripe(sw); // skips the failed device's write
        return;
    }

    if (written == sw->plan.writes.end()) {
        // Untouched failed chunk: its (unknown) old content cancels out of
        // the parity delta, so read-modify-write works unmodified.
        auto &plan = sw->plan;
        plan.mode = raid::WriteMode::kReadModifyWrite;
        plan.rcwReads.clear();
        std::uint32_t lo = geom_.chunkSize(), hi = 0;
        for (const auto &s : plan.writes) {
            lo = std::min(lo, s.offset);
            hi = std::max(hi, s.offset + s.length);
        }
        plan.parityOffset = lo;
        plan.parityLength = hi - lo;
        plan.waitNum = static_cast<std::uint32_t>(plan.writes.size());
        executePartialStripe(sw);
        return;
    }

    // The write touches the failed chunk itself. Peel its segment off and
    // route it through the targeted parity update; any surviving written
    // chunks go through an ordinary forced-RMW sub-operation first (the
    // stripe lock is held across both, so the sequence is atomic with
    // respect to other writers).
    const raid::WriteSegment failed_seg = *written;
    const std::size_t seg_pos =
        static_cast<std::size_t>(written - sw->plan.writes.begin());
    ec::Buffer failed_data = sw->segData[seg_pos];
    sw->plan.writes.erase(written);
    sw->segData.erase(sw->segData.begin() +
                      static_cast<std::ptrdiff_t>(seg_pos));

    if (sw->plan.writes.empty()) {
        executeDegradedTargetedWrite(sw, failed_seg,
                                     std::move(failed_data));
        return;
    }

    // Phase 1: surviving segments via RMW (the failed chunk is untouched
    // in this sub-op, so its unknown content cancels out of the delta).
    auto phase1 = std::make_shared<StripeWrite>();
    phase1->plan = sw->plan;
    phase1->plan.mode = raid::WriteMode::kReadModifyWrite;
    phase1->plan.rcwReads.clear();
    std::uint32_t lo = geom_.chunkSize(), hi = 0;
    for (const auto &s : phase1->plan.writes) {
        lo = std::min(lo, s.offset);
        hi = std::max(hi, s.offset + s.length);
    }
    phase1->plan.parityOffset = lo;
    phase1->plan.parityLength = hi - lo;
    phase1->plan.waitNum =
        static_cast<std::uint32_t>(phase1->plan.writes.size());
    phase1->segData = sw->segData;
    phase1->retriesLeft = sw->retriesLeft;
    phase1->done = [this, sw, failed_seg,
                    failed_data = std::move(failed_data)](bool ok) mutable {
        if (!ok) {
            sw->done(false);
            return;
        }
        executeDegradedTargetedWrite(sw, failed_seg,
                                     std::move(failed_data));
    };
    executePartialStripe(phase1);
}

void
DraidHost::executeDegradedTargetedWrite(std::shared_ptr<StripeWrite> sw,
                                        const raid::WriteSegment &seg,
                                        ec::Buffer data)
{
    const std::uint64_t stripe = sw->plan.stripe;
    const std::uint32_t fidx = seg.dataIdx;
    const bool raid6 = geom_.level() == raid::RaidLevel::kRaid6;
    const std::uint32_t p_dev = geom_.parityDevice(stripe);
    const std::uint32_t q_dev = raid6 ? geom_.qDevice(stripe) : 0;
    const sim::NodeId p_node = nodeOf(p_dev);
    const sim::NodeId q_node =
        raid6 ? nodeOf(q_dev) : sim::kInvalidNode;

    std::set<std::uint8_t> subs{kParitySub};
    if (raid6)
        subs.insert(kQParitySub);
    const std::uint64_t op = registerOp(
        std::move(subs), nullptr, [this, sw](bool ok) {
            if (ok)
                sw->done(true);
            else
                retryStripe(sw);
        });

    const std::uint64_t chunk_addr = geom_.deviceAddress(stripe, 0);

    // Survivors forward their slice of the written range straight to the
    // parity bdev(s): P_new[r] = XOR_i!=f D_i[r] ^ new[r].
    std::uint32_t survivors = 0;
    for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i) {
        if (i == fidx)
            continue;
        ++survivors;
        proto::Capsule c;
        c.opcode = proto::Opcode::kReconstruction;
        c.commandId = makeCmdId(op, static_cast<std::uint8_t>(i));
        c.subtype = proto::Subtype::kNoRead;
        c.fwdOffset = seg.offset;
        c.fwdLength = seg.length;
        c.sgList.push_back(proto::Sge{chunk_addr, geom_.chunkSize()});
        c.nextDest = p_node;
        c.nextDest2 = q_node;
        c.dataIdx = static_cast<std::uint16_t>(i);
        c.stripe = stripe;
        c.waitNum = 0;
        c.traceId = sw->traceId;
        sendCapsule(geom_.dataDevice(stripe, i), std::move(c), {});
    }

    auto make_parity = [&](std::uint8_t sub) {
        proto::Capsule c;
        c.opcode = proto::Opcode::kParity;
        c.commandId = makeCmdId(op, sub);
        c.subtype = proto::Subtype::kDegraded;
        c.offset = chunk_addr + seg.offset;
        c.length = seg.length;
        c.fwdOffset = seg.offset;
        c.fwdLength = seg.length;
        c.waitNum = static_cast<std::uint16_t>(survivors + 1);
        c.stripe = stripe;
        c.traceId = sw->traceId;
        return c;
    };
    sendCapsule(p_dev, make_parity(kParitySub), data);
    if (raid6) {
        const auto &gf = ec::Gf256::instance();
        ec::Buffer qdata(data.size());
        gf.mulBlock(gf.pow2(fidx), data.data(), qdata.data(),
                    qdata.size());
        sendCapsule(q_dev, make_parity(kQParitySub), std::move(qdata));
    }
}

void
DraidHost::executeFullStripe(std::shared_ptr<StripeWrite> sw)
{
    ++counters_.fullStripeWrites;
    const std::uint64_t stripe = sw->plan.stripe;
    const std::uint32_t k = geom_.dataChunks();
    const std::uint32_t chunk = geom_.chunkSize();

    // Order the chunk buffers by data index.
    std::vector<ec::Buffer> chunks(k);
    for (std::size_t i = 0; i < sw->plan.writes.size(); ++i)
        chunks[sw->plan.writes[i].dataIdx] = sw->segData[i];

    // The host computes parity for full-stripe writes (§3): no remote
    // reads are needed, so disaggregating would gain nothing.
    const std::uint64_t stripe_bytes = geom_.stripeDataSize();
    auto &cpu = cluster_.host().cpu();
    const auto &cfg = cluster_.config();

    auto issue = [this, sw, stripe, chunk, chunks]() {
        ec::Buffer p, q;
        if (geom_.level() == raid::RaidLevel::kRaid6) {
            ec::Raid6Codec::computePQ(chunks, p, q);
        } else {
            p = ec::Raid5Codec::computeParity(chunks);
        }

        struct Tally
        {
            int remaining = 0;
            bool ok = true;
        };
        auto tally = std::make_shared<Tally>();
        auto finish = [this, sw, tally](blockdev::IoStatus st) {
            if (st != blockdev::IoStatus::kOk)
                tally->ok = false;
            if (--tally->remaining == 0) {
                if (tally->ok)
                    sw->done(true);
                else
                    retryStripe(sw);
            }
        };

        const std::uint64_t addr = geom_.deviceAddress(sw->plan.stripe, 0);
        std::vector<std::pair<std::uint32_t, ec::Buffer>> ios;
        for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i)
            ios.emplace_back(geom_.dataDevice(sw->plan.stripe, i),
                             chunks[i]);
        ios.emplace_back(geom_.parityDevice(sw->plan.stripe), p);
        if (geom_.level() == raid::RaidLevel::kRaid6)
            ios.emplace_back(geom_.qDevice(sw->plan.stripe), q);

        for (auto &[dev, buf] : ios) {
            if (failed_ && dev == *failed_)
                continue; // lost chunk: content implied by the others
            ++tally->remaining;
        }
        assert(tally->remaining > 0);
        for (auto &[dev, buf] : ios) {
            if (failed_ && dev == *failed_)
                continue;
            initiator_.writeRemote(targetOf(dev), addr, buf, finish,
                                   sw->traceId);
        }
        (void)stripe;
        (void)chunk;
    };

    // Charge the host-side parity computation.
    const std::uint64_t trace = sw->traceId;
    if (geom_.level() == raid::RaidLevel::kRaid6) {
        cpu.executeBytes(stripe_bytes, cfg.xorBw, sim::Ticks::zero(), trace, "parity.xor",
                         [&cpu, &cfg, stripe_bytes, trace, issue]() {
                             cpu.executeBytes(stripe_bytes, cfg.gfBw, sim::Ticks::zero(),
                                              trace, "parity.gf", issue);
                         });
    } else {
        cpu.executeBytes(stripe_bytes, cfg.xorBw, sim::Ticks::zero(), trace, "parity.xor",
                         issue);
    }
}

void
DraidHost::executeParityLessWrite(std::shared_ptr<StripeWrite> sw)
{
    // RAID-5 stripe whose parity device failed: plain data writes.
    struct Tally
    {
        int remaining = 0;
        bool ok = true;
    };
    auto tally = std::make_shared<Tally>();
    tally->remaining = static_cast<int>(sw->plan.writes.size());
    for (std::size_t i = 0; i < sw->plan.writes.size(); ++i) {
        const auto &seg = sw->plan.writes[i];
        const std::uint32_t dev =
            geom_.dataDevice(sw->plan.stripe, seg.dataIdx);
        const std::uint64_t addr =
            geom_.deviceAddress(sw->plan.stripe, seg.offset);
        initiator_.writeRemote(targetOf(dev), addr, sw->segData[i],
                               [this, sw, tally](blockdev::IoStatus st) {
            if (st != blockdev::IoStatus::kOk)
                tally->ok = false;
            if (--tally->remaining == 0) {
                if (tally->ok)
                    sw->done(true);
                else
                    retryStripe(sw);
            }
        }, sw->traceId);
    }
}

void
DraidHost::executePartialStripe(std::shared_ptr<StripeWrite> sw)
{
    const auto &plan = sw->plan;
    const std::uint64_t stripe = plan.stripe;
    const std::uint32_t chunk = geom_.chunkSize();
    const bool rmw = plan.mode == raid::WriteMode::kReadModifyWrite;
    const bool raid6 = geom_.level() == raid::RaidLevel::kRaid6;

    if (rmw)
        ++counters_.rmwWrites;
    else
        ++counters_.rcwWrites;

    const std::uint32_t p_dev = geom_.parityDevice(stripe);
    const std::uint32_t q_dev = raid6 ? geom_.qDevice(stripe) : 0;
    const bool p_alive = !(failed_ && *failed_ == p_dev);
    const bool q_alive = raid6 && !(failed_ && *failed_ == q_dev);
    assert(p_alive || q_alive || !raid6);

    // Expected completions: every written data chunk plus each live
    // parity reducer.
    std::set<std::uint8_t> subs;
    for (const auto &seg : plan.writes)
        subs.insert(static_cast<std::uint8_t>(seg.dataIdx));
    if (p_alive)
        subs.insert(kParitySub);
    if (q_alive)
        subs.insert(kQParitySub);

    const std::uint64_t op = registerOp(
        std::move(subs), nullptr, [this, sw](bool ok) {
            if (ok)
                sw->done(true);
            else
                retryStripe(sw);
        });

    const sim::NodeId p_node =
        p_alive ? nodeOf(p_dev) : sim::kInvalidNode;
    const sim::NodeId q_node =
        q_alive ? nodeOf(q_dev) : sim::kInvalidNode;

    // --- PartialWrite to every written chunk ---
    for (std::size_t i = 0; i < plan.writes.size(); ++i) {
        const auto &seg = plan.writes[i];
        const std::uint64_t chunk_addr = geom_.deviceAddress(stripe, 0);
        proto::Capsule c;
        c.opcode = proto::Opcode::kPartialWrite;
        c.commandId = makeCmdId(op, static_cast<std::uint8_t>(seg.dataIdx));
        c.subtype = rmw ? proto::Subtype::kRmw : proto::Subtype::kRwWrite;
        c.offset = chunk_addr + seg.offset;
        c.length = seg.length;
        c.fwdOffset = rmw ? seg.offset : 0;
        c.fwdLength = rmw ? seg.length : chunk;
        c.sgList.push_back(proto::Sge{chunk_addr, chunk});
        c.nextDest = p_node;
        c.nextDest2 = q_node;
        c.dataIdx = static_cast<std::uint16_t>(seg.dataIdx);
        c.stripe = stripe;
        c.traceId = sw->traceId;
        sendCapsule(geom_.dataDevice(stripe, seg.dataIdx), std::move(c),
                    sw->segData[i]);
    }

    // --- PartialWrite(RW_READ) to untouched chunks (reconstruct write) ---
    for (const auto idx : plan.rcwReads) {
        const std::uint32_t dev = geom_.dataDevice(stripe, idx);
        if (failed_ && dev == *failed_)
            continue; // excluded by the degraded planner
        const std::uint64_t chunk_addr = geom_.deviceAddress(stripe, 0);
        proto::Capsule c;
        c.opcode = proto::Opcode::kPartialWrite;
        c.commandId = makeCmdId(op, static_cast<std::uint8_t>(idx));
        c.subtype = proto::Subtype::kRwRead;
        c.offset = chunk_addr;
        c.length = 0;
        c.fwdOffset = 0;
        c.fwdLength = chunk;
        c.sgList.push_back(proto::Sge{chunk_addr, chunk});
        c.nextDest = p_node;
        c.nextDest2 = q_node;
        c.dataIdx = static_cast<std::uint16_t>(idx);
        c.stripe = stripe;
        c.traceId = sw->traceId;
        sendCapsule(dev, std::move(c), {});
    }

    // --- Parity commands ---
    const std::uint32_t wait_num = plan.waitNum;
    auto make_parity = [&](std::uint8_t sub) {
        proto::Capsule c;
        c.opcode = proto::Opcode::kParity;
        c.commandId = makeCmdId(op, sub);
        c.subtype = rmw ? proto::Subtype::kRmw : proto::Subtype::kNone;
        c.offset = geom_.deviceAddress(stripe, plan.parityOffset);
        c.length = plan.parityLength;
        c.fwdOffset = plan.parityOffset;
        c.fwdLength = plan.parityLength;
        c.waitNum = static_cast<std::uint16_t>(wait_num);
        c.stripe = stripe;
        c.traceId = sw->traceId;
        return c;
    };

    if (p_alive)
        sendCapsule(p_dev, make_parity(kParitySub), {});
    if (q_alive)
        sendCapsule(q_dev, make_parity(kQParitySub), {});
}

void
DraidHost::retryStripe(std::shared_ptr<StripeWrite> sw)
{
    if (sw->retriesLeft-- <= 0) {
        failoverFrom(lastExpiredSubs_, sw->plan.stripe);
        if (failed_) {
            // Re-execute in degraded mode.
            executeStripeWrite(sw);
        } else {
            sw->done(false);
        }
        return;
    }
    ++counters_.retries;

    // §5.4: a full stripe write is always used for retries, built from
    // idempotent plain reads and writes. Fetch the final content of every
    // data chunk, then rewrite the stripe wholesale.
    const std::uint64_t stripe = sw->plan.stripe;
    const std::uint32_t k = geom_.dataChunks();
    const std::uint32_t chunk = geom_.chunkSize();

    struct Gather
    {
        // draid-lint: cap(stripe width; one buffer per gathered chunk)
        std::vector<ec::Buffer> chunks;
        int remaining = 0;
        bool ok = true;
    };
    auto g = std::make_shared<Gather>();
    g->chunks.assign(k, ec::Buffer());
    g->remaining = static_cast<int>(k);

    auto merged = [this, sw, g, stripe, chunk]() {
        if (!g->ok) {
            retryStripe(sw); // count down further retries
            return;
        }
        // Overlay the new segments and reissue as a full-stripe plan.
        for (std::size_t i = 0; i < sw->plan.writes.size(); ++i) {
            const auto &seg = sw->plan.writes[i];
            std::memcpy(g->chunks[seg.dataIdx].data() + seg.offset,
                        sw->segData[i].data(), seg.length);
        }
        auto fsw = std::make_shared<StripeWrite>();
        fsw->plan.stripe = stripe;
        fsw->plan.mode = raid::WriteMode::kFullStripe;
        fsw->plan.parityOffset = 0;
        fsw->plan.parityLength = chunk;
        for (std::uint32_t idx = 0; idx < g->chunks.size(); ++idx) {
            fsw->plan.writes.push_back(raid::WriteSegment{idx, 0, chunk});
            fsw->segData.push_back(g->chunks[idx]);
        }
        fsw->retriesLeft = sw->retriesLeft;
        fsw->traceId = sw->traceId;
        fsw->done = sw->done;
        executeFullStripe(fsw);
    };

    for (std::uint32_t idx = 0; idx < k; ++idx) {
        // Chunks fully covered by the write need no read.
        const auto *covering = [&]() -> const raid::WriteSegment * {
            for (const auto &s : sw->plan.writes) {
                if (s.dataIdx == idx && s.offset == 0 && s.length == chunk)
                    return &s;
            }
            return nullptr;
        }();
        if (covering) {
            for (std::size_t i = 0; i < sw->plan.writes.size(); ++i) {
                if (&sw->plan.writes[i] == covering)
                    g->chunks[idx] = sw->segData[i].clone();
            }
            if (--g->remaining == 0)
                merged();
            continue;
        }
        readChunk(stripe, idx, [this, g, idx, merged, sw](bool ok,
                                                          ec::Buffer data) {
            if (!ok) {
                g->ok = false;
                g->chunks[idx] = ec::Buffer(geom_.chunkSize());
            } else {
                g->chunks[idx] = std::move(data);
            }
            (void)sw;
            if (--g->remaining == 0)
                merged();
        }, sw->traceId);
    }
}

void
DraidHost::failoverFrom(const std::set<std::uint8_t> &missing,
                        std::uint64_t stripe)
{
    if (failed_ || missing.empty())
        return;
    const std::uint8_t sub = *missing.begin();
    std::uint32_t dev;
    if (sub == kParitySub) {
        dev = geom_.parityDevice(stripe);
    } else if (sub == kQParitySub) {
        dev = geom_.qDevice(stripe);
    } else if (sub < geom_.dataChunks()) {
        dev = geom_.dataDevice(stripe, sub);
    } else {
        return;
    }
    ++counters_.failovers;
    markFailed(dev);
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void
DraidHost::read(std::uint64_t offset, std::uint32_t length,
                blockdev::ReadCallback cb)
{
    assert(offset + length <= sizeBytes());
    ++counters_.normalReads;
    const std::uint64_t trace = cluster_.tracer().mint();
    contention_->noteOpStart(trace);
    const sim::Ticks op_start = cluster_.sim().now();
    auto extents = geom_.map(offset, length);
    ec::Buffer out(length);

    // Group extents by stripe, remembering each one's place in the output.
    std::vector<std::pair<std::uint64_t, std::vector<GroupExtent>>> groups;
    std::size_t pos = 0;
    for (const auto &e : extents) {
        if (groups.empty() || groups.back().first != e.stripe)
            groups.push_back({e.stripe, {}});
        groups.back().second.push_back(GroupExtent{e, pos});
        pos += e.length;
    }

    auto remaining = std::make_shared<int>(static_cast<int>(groups.size()));
    auto all_ok = std::make_shared<bool>(true);
    auto group_done = [this, remaining, all_ok, out, cb, trace, op_start,
                       length](bool ok) {
        if (!ok)
            *all_ok = false;
        if (--*remaining == 0) {
            finishOpSpan(trace, "draid.read", op_start, length,
                         readLatencyUs_);
            cb(*all_ok ? blockdev::IoStatus::kOk
                       : blockdev::IoStatus::kError,
               out);
        }
    };

    for (auto &[stripe, ge] : groups)
        readStripeGroup(stripe, std::move(ge), out, group_done, trace);
}

void
DraidHost::readStripeGroup(std::uint64_t stripe,
                           std::vector<GroupExtent> extents, ec::Buffer out,
                           std::function<void(bool)> done,
                           std::uint64_t trace)
{
    const bool has_failed_extent =
        failed_ && std::any_of(extents.begin(), extents.end(),
                               [this](const GroupExtent &g) {
                                   return deviceOf(g.extent) == *failed_;
                               });
    if (has_failed_extent) {
        degradedStripeRead(stripe, std::move(extents), out, std::move(done),
                           trace);
        return;
    }

    auto remaining = std::make_shared<int>(static_cast<int>(extents.size()));
    auto all_ok = std::make_shared<bool>(true);
    for (const auto &g : extents) {
        const std::uint32_t dev = deviceOf(g.extent);
        const std::uint64_t addr =
            geom_.deviceAddress(stripe, g.extent.offset);
        initiator_.readRemote(
            targetOf(dev), addr, g.extent.length,
            [g, out, remaining, all_ok, done](blockdev::IoStatus st,
                                              ec::Buffer data) mutable {
                if (st != blockdev::IoStatus::kOk) {
                    *all_ok = false;
                } else {
                    std::memcpy(out.data() + g.outPos, data.data(),
                                data.size());
                }
                if (--*remaining == 0)
                    done(*all_ok);
            },
            trace);
    }
}

std::vector<std::uint32_t>
DraidHost::reconParticipants(std::uint64_t stripe,
                             std::uint32_t failed) const
{
    // XOR recovery path: every surviving data chunk plus P. Q does not
    // participate (its chunks are not XOR-linear with coefficient one).
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i) {
        const std::uint32_t dev = geom_.dataDevice(stripe, i);
        if (dev != failed)
            out.push_back(dev);
    }
    const std::uint32_t p = geom_.parityDevice(stripe);
    if (p != failed)
        out.push_back(p);
    return out;
}

void
DraidHost::degradedStripeRead(std::uint64_t stripe,
                              std::vector<GroupExtent> extents,
                              ec::Buffer out,
                              std::function<void(bool)> done,
                              std::uint64_t trace)
{
    ++counters_.degradedReads;
    assert(failed_);
    const std::uint32_t fidx = geom_.dataIndexOf(stripe, *failed_);

    const auto failed_it =
        std::find_if(extents.begin(), extents.end(),
                     [fidx](const GroupExtent &g) {
                         return g.extent.dataIdx == fidx;
                     });
    assert(failed_it != extents.end());
    const std::uint32_t recon_off = failed_it->extent.offset;
    const std::uint32_t recon_len = failed_it->extent.length;
    const std::size_t recon_out = failed_it->outPos;

    const auto participants = reconParticipants(stripe, *failed_);
    const std::uint32_t reducer = selector_->select(participants, rng_);
    cluster_.telemetry().journal().record(
        telemetry::EventType::kDegradedReadServed, cluster_.hostId(),
        cluster_.sim().now().raw(), stripe, recon_len);
    noteReconstructionLoad(recon_len);
    if (bwAware_ && reducer < reconTxAttributed_.size())
        reconTxAttributed_[reducer] += recon_len;

    // Expected completions: the reducer plus every chunk we also read.
    std::set<std::uint8_t> subs{kReducerSub};
    for (const auto &g : extents) {
        if (g.extent.dataIdx != fidx)
            subs.insert(static_cast<std::uint8_t>(g.extent.dataIdx));
    }

    // Deliver payloads into the user buffer as they land.
    auto extents_shared =
        std::make_shared<std::vector<GroupExtent>>(std::move(extents));
    auto on_data = [out, extents_shared, recon_out,
                    fidx](std::uint8_t sub, ec::Buffer payload) mutable {
        if (sub == kReducerSub) {
            std::memcpy(out.data() + recon_out, payload.data(),
                        payload.size());
            return;
        }
        for (const auto &g : *extents_shared) {
            if (g.extent.dataIdx == sub && g.extent.dataIdx != fidx) {
                std::memcpy(out.data() + g.outPos, payload.data(),
                            payload.size());
                return;
            }
        }
    };

    registerAndBroadcastReconstruction(
        stripe, participants, reducer, recon_off, recon_len,
        /*spare_node=*/sim::kInvalidNode, *extents_shared, fidx,
        std::move(on_data), std::move(done), proto::Subtype::kNoRead,
        trace);
}

void
DraidHost::registerAndBroadcastReconstruction(
    std::uint64_t stripe, const std::vector<std::uint32_t> &participants,
    std::uint32_t reducer, std::uint32_t recon_off, std::uint32_t recon_len,
    sim::NodeId spare_node, const std::vector<GroupExtent> &extents,
    std::uint32_t fidx, std::function<void(std::uint8_t, ec::Buffer)> on_data,
    std::function<void(bool)> done, proto::Subtype base_subtype,
    std::uint64_t trace)
{
    std::set<std::uint8_t> subs{kReducerSub};
    for (const auto &g : extents) {
        if (g.extent.dataIdx != fidx)
            subs.insert(static_cast<std::uint8_t>(g.extent.dataIdx));
    }

    const std::uint64_t op =
        registerOp(std::move(subs), std::move(on_data), std::move(done));

    const std::uint64_t chunk_addr = geom_.deviceAddress(stripe, 0);
    const sim::NodeId reducer_node = nodeOf(reducer);

    for (const auto dev : participants) {
        const bool is_reducer = dev == reducer;
        const bool is_parity = dev == geom_.parityDevice(stripe) ||
                               (geom_.level() == raid::RaidLevel::kRaid6 &&
                                dev == geom_.qDevice(stripe));
        std::uint32_t idx = 0;
        const GroupExtent *read_extent = nullptr;
        if (!is_parity) {
            idx = geom_.dataIndexOf(stripe, dev);
            for (const auto &g : extents) {
                if (g.extent.dataIdx == idx)
                    read_extent = &g;
            }
        }

        proto::Capsule c;
        c.opcode = proto::Opcode::kReconstruction;
        c.commandId = makeCmdId(
            op, is_parity ? kParitySub : static_cast<std::uint8_t>(idx));
        c.subtype = read_extent ? proto::Subtype::kAlsoRead : base_subtype;
        if (read_extent) {
            c.offset = chunk_addr + read_extent->extent.offset;
            c.length = read_extent->extent.length;
        }
        c.fwdOffset = recon_off;
        c.fwdLength = recon_len;
        c.sgList.push_back(proto::Sge{chunk_addr, geom_.chunkSize()});
        c.dataIdx = static_cast<std::uint16_t>(idx);
        c.stripe = stripe;
        c.traceId = trace;
        if (is_reducer) {
            c.nextDest = spare_node != sim::kInvalidNode
                             ? spare_node
                             : cluster_.hostId();
            c.waitNum =
                static_cast<std::uint16_t>(participants.size() - 1);
        } else {
            c.nextDest = reducer_node;
            c.waitNum = 0;
        }
        sendCapsule(dev, std::move(c), {});
    }
}

void
DraidHost::readChunk(std::uint64_t stripe, std::uint32_t data_idx,
                     std::function<void(bool, ec::Buffer)> cb,
                     std::uint64_t trace)
{
    const std::uint32_t dev = geom_.dataDevice(stripe, data_idx);
    const std::uint32_t chunk = geom_.chunkSize();
    const std::uint64_t addr = geom_.deviceAddress(stripe, 0);

    if (failed_ && dev == *failed_) {
        ec::Buffer out(chunk);
        std::vector<GroupExtent> extents{
            GroupExtent{raid::Extent{stripe, data_idx, 0, chunk}, 0}};
        degradedStripeRead(stripe, std::move(extents), out,
                           [cb, out](bool ok) { cb(ok, out); }, trace);
        return;
    }
    initiator_.readRemote(targetOf(dev), addr, chunk,
                          [cb](blockdev::IoStatus st, ec::Buffer data) {
                              cb(st == blockdev::IoStatus::kOk,
                                 std::move(data));
                          },
                          trace);
}

// ---------------------------------------------------------------------------
// Rebuild (§6)
// ---------------------------------------------------------------------------

void
DraidHost::reconstructChunk(std::uint64_t stripe, std::uint32_t spare_target,
                            std::function<void(bool)> done)
{
    assert(failed_);
    assert(spare_target < cluster_.numTargets());
    const raid::ChunkRole role = geom_.roleOf(stripe, *failed_);
    const std::uint32_t chunk = geom_.chunkSize();

    std::vector<std::uint32_t> participants;
    proto::Subtype subtype = proto::Subtype::kNoRead;
    std::uint32_t fidx = 0;
    if (role == raid::ChunkRole::kData) {
        fidx = geom_.dataIndexOf(stripe, *failed_);
        participants = reconParticipants(stripe, *failed_);
    } else if (role == raid::ChunkRole::kParityP) {
        // P = XOR of all data chunks.
        for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i)
            participants.push_back(geom_.dataDevice(stripe, i));
        fidx = geom_.dataChunks(); // no data extent matches
    } else {
        // Q = sum g^i D_i: contributions arrive premultiplied.
        for (std::uint32_t i = 0; i < geom_.dataChunks(); ++i)
            participants.push_back(geom_.dataDevice(stripe, i));
        subtype = proto::Subtype::kNoReadQ;
        fidx = geom_.dataChunks();
    }

    const std::uint32_t reducer = selector_->select(participants, rng_);
    noteReconstructionLoad(chunk);
    if (bwAware_ && reducer < reconTxAttributed_.size())
        reconTxAttributed_[reducer] += chunk;

    const std::uint64_t trace = cluster_.tracer().mint();
    const sim::Ticks start = cluster_.sim().now();
    auto wrapped = [this, done = std::move(done), trace, start,
                    chunk](bool ok) {
        finishOpSpan(trace, "draid.reconstruct", start, chunk, nullptr);
        done(ok);
    };
    registerAndBroadcastReconstruction(
        stripe, participants, reducer, 0, chunk,
        cluster_.targetNodeId(spare_target), {}, fidx, nullptr,
        std::move(wrapped), subtype, trace);
}

// ---------------------------------------------------------------------------
// Bandwidth-aware planning (§6.2)
// ---------------------------------------------------------------------------

void
DraidHost::armBwTimer()
{
    if (!bwAware_ || bwTimerArmed_)
        return;
    bwTimerArmed_ = true;
    cluster_.sim().schedule(cluster_.config().rebalancePeriod,
                            "draid.bw_refresh",
                            [this]() { refreshBwPlan(); });
}

void
DraidHost::refreshBwPlan()
{
    bwTimerArmed_ = false;
    const bool had_activity = reconBytesWindow_ > 0 || !pending_.empty();
    const auto &cfg = cluster_.config();
    const double dt = sim::toSeconds(cfg.rebalancePeriod);

    std::vector<std::uint32_t> targets;
    std::vector<double> available;
    for (std::uint32_t i = 0; i < width_; ++i) {
        if (failed_ && *failed_ == i)
            continue;
        auto &nic = cluster_.target(targetOf(i)).nic();
        const std::uint64_t tx_now = nic.tx().bytesTransferred();
        const double tx_rate =
            static_cast<double>(tx_now - lastTxBytes_[i]) / dt;
        lastTxBytes_[i] = tx_now;
        const double recon_rate =
            static_cast<double>(reconTxAttributed_[i]) / dt;
        reconTxAttributed_[i] = 0;
        targets.push_back(i);
        available.push_back(
            std::max(0.0, nic.goodput() - std::max(0.0, tx_rate -
                                                            recon_rate)));
    }
    const double load = static_cast<double>(reconBytesWindow_) / dt;
    reconBytesWindow_ = 0;

    if (!targets.empty() && bwAware_) {
        bwAware_->refresh(targets, available, load,
                          static_cast<double>(width_ - 1));
    }
    // Keep ticking only while reconstruction work is flowing; otherwise
    // quiesce and let the next degraded operation re-arm the timer.
    if (had_activity)
        armBwTimer();
}

// ---------------------------------------------------------------------------
// DraidSystem assembly
// ---------------------------------------------------------------------------

DraidSystem::DraidSystem(cluster::Cluster &cluster,
                         const DraidOptions &options, std::uint32_t width)
{
    for (std::uint32_t i = 0; i < cluster.numTargets(); ++i)
        bdevs_.push_back(std::make_unique<DraidBdev>(cluster, i, options));
    host_ = std::make_unique<DraidHost>(cluster, options, width);
}

DraidSystem::~DraidSystem() = default;

} // namespace draid::core
