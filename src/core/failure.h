/**
 * @file
 * Failure-handling helpers (paper §5.4): explicit per-operation deadlines.
 *
 * dRAID sets an upper bound on the execution time of every operation; an
 * expired operation generates an explicit event at the host-side
 * controller, which retries with a full-stripe write only after every
 * sub-operation has reached a final state.
 */

#ifndef DRAID_CORE_FAILURE_H
#define DRAID_CORE_FAILURE_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/types.h"
#include "telemetry/event_journal.h"

namespace draid::core {

/**
 * Cancellable one-shot deadlines keyed by operation id.
 *
 * arm() schedules the expiry callback; disarm() (on normal completion)
 * guarantees the callback never fires. Re-arming an id supersedes the
 * previous deadline.
 */
class DeadlineTable
{
  public:
    explicit DeadlineTable(sim::Simulator &sim) : sim_(sim) {}

    /** Arm (or re-arm) a deadline @p delay from now. */
    void arm(std::uint64_t id, sim::Ticks delay, std::function<void()> expire);

    /** Cancel the deadline; no-op if not armed. */
    void disarm(std::uint64_t id);

    bool isArmed(std::uint64_t id) const { return armed_.contains(id); }

    std::uint64_t expiredCount() const { return expired_; }

    /**
     * Attach the cluster event journal: every expiry also records an
     * OpTimeout event (a = operation id) as node @p node. Observe-only.
     */
    void bindJournal(telemetry::EventJournal *journal, sim::NodeId node);

  private:
    sim::Simulator &sim_;
    // id -> generation; a scheduled event only fires its callback when the
    // generation it captured is still current.
    // draid-lint: cap(one generation per device id; fixed topology)
    std::unordered_map<std::uint64_t, std::uint64_t> armed_;
    std::uint64_t nextGen_ = 1;
    std::uint64_t expired_ = 0;
    telemetry::EventJournal *journal_ = nullptr;
    sim::NodeId journalNode_ = 0;
};

/**
 * Array-level failure accounting for fault campaigns: tracks which member
 * devices are currently failed, promotes failures beyond the redundancy
 * level to data loss, records per-stripe losses found during rebuild
 * (e.g. a latent sector error on a survivor), and measures the rebuild
 * exposure window of every failure (fail -> rebuilt).
 *
 * The tracker is bookkeeping only: it never touches the Simulator or the
 * data path. The DraidHost still owns degraded-mode behaviour (it models
 * a single failed device); the tracker is the layer that knows a *second*
 * concurrent failure means the array has lost data even though the host
 * cannot represent it.
 */
class FailureTracker
{
  public:
    /** @param width member devices; @param redundancy failures survivable
     *  (1 for RAID-5, 2 for RAID-6). */
    FailureTracker(std::uint32_t width, std::uint32_t redundancy);

    /**
     * Attach the cluster event journal: recordFailure() then records a
     * DriveFailed event (a = device, b = active failures after this one)
     * unless the caller journaled it already, and any promotion to data
     * loss records a DataLoss event. Observe-only.
     */
    void bindJournal(telemetry::EventJournal *journal, sim::NodeId node);

    /**
     * A member device failed at @p tick. Journals DriveFailed (unless
     * @p already_journaled — the DraidHost::markFailed path emits its
     * own) and, when active failures now exceed the redundancy, promotes
     * to data loss with a DataLoss (a = device, b = 0) record. Returns
     * false if the device was already failed (no-op).
     */
    bool recordFailure(std::uint32_t device, sim::Ticks tick,
                       bool already_journaled = false);

    /**
     * Device @p device was rebuilt onto a spare at @p tick: closes its
     * exposure window (the DriveRecovered/HotSpareSwap journal records
     * come from the host's swap path, not from here).
     */
    void recordRebuilt(std::uint32_t device, sim::Ticks tick);

    /**
     * One stripe could not be reconstructed during rebuild (a second
     * fault — latent sector error, dead participant — hit a survivor).
     * Promotes to data loss with a DataLoss (a = stripe, b = 1) record;
     * repeated losses of the same stripe journal once.
     */
    void recordStripeLoss(std::uint64_t stripe, sim::Ticks tick);

    bool dataLoss() const { return dataLoss_; }
    std::uint32_t activeFailures() const { return active_; }
    std::uint64_t lostStripes() const { return lostStripes_; }

    /** Currently failed member devices, ascending. */
    std::vector<std::uint32_t> failedDevices() const;

    /** Closed exposure windows (fail -> rebuilt), in ticks. */
    const std::vector<sim::Tick> &exposureWindows() const
    {
        return exposure_;
    }

    /** Exposure still open for @p now (0 when nothing is failed). */
    sim::Ticks openExposure(sim::Ticks now) const;

  private:
    std::uint32_t width_;
    std::uint32_t redundancy_;
    std::uint32_t active_ = 0;
    bool dataLoss_ = false;
    std::uint64_t lostStripes_ = 0;
    std::uint64_t lastLostStripe_ = 0;
    /** Per-device fail tick; < 0 = not currently failed. */
    // draid-lint: cap(one entry per member device; fixed topology)
    std::vector<std::int64_t> failedAt_;
    // draid-lint: cap(one entry per member device; fixed topology)
    std::vector<sim::Tick> exposure_;
    telemetry::EventJournal *journal_ = nullptr;
    sim::NodeId journalNode_ = 0;
};

} // namespace draid::core

#endif // DRAID_CORE_FAILURE_H
