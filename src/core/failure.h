/**
 * @file
 * Failure-handling helpers (paper §5.4): explicit per-operation deadlines.
 *
 * dRAID sets an upper bound on the execution time of every operation; an
 * expired operation generates an explicit event at the host-side
 * controller, which retries with a full-stripe write only after every
 * sub-operation has reached a final state.
 */

#ifndef DRAID_CORE_FAILURE_H
#define DRAID_CORE_FAILURE_H

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/simulator.h"
#include "sim/types.h"
#include "telemetry/event_journal.h"

namespace draid::core {

/**
 * Cancellable one-shot deadlines keyed by operation id.
 *
 * arm() schedules the expiry callback; disarm() (on normal completion)
 * guarantees the callback never fires. Re-arming an id supersedes the
 * previous deadline.
 */
class DeadlineTable
{
  public:
    explicit DeadlineTable(sim::Simulator &sim) : sim_(sim) {}

    /** Arm (or re-arm) a deadline @p delay from now. */
    void arm(std::uint64_t id, sim::Tick delay, std::function<void()> expire);

    /** Cancel the deadline; no-op if not armed. */
    void disarm(std::uint64_t id);

    bool isArmed(std::uint64_t id) const { return armed_.contains(id); }

    std::uint64_t expiredCount() const { return expired_; }

    /**
     * Attach the cluster event journal: every expiry also records an
     * OpTimeout event (a = operation id) as node @p node. Observe-only.
     */
    void bindJournal(telemetry::EventJournal *journal, sim::NodeId node);

  private:
    sim::Simulator &sim_;
    // id -> generation; a scheduled event only fires its callback when the
    // generation it captured is still current.
    std::unordered_map<std::uint64_t, std::uint64_t> armed_;
    std::uint64_t nextGen_ = 1;
    std::uint64_t expired_ = 0;
    telemetry::EventJournal *journal_ = nullptr;
    sim::NodeId journalNode_ = 0;
};

} // namespace draid::core

#endif // DRAID_CORE_FAILURE_H
