#include "core/failure.h"

#include <utility>

namespace draid::core {

void
DeadlineTable::arm(std::uint64_t id, sim::Tick delay,
                   std::function<void()> expire)
{
    const std::uint64_t gen = nextGen_++;
    armed_[id] = gen;
    sim_.schedule(delay, "failure.deadline",
                  [this, id, gen, expire = std::move(expire)]() {
        auto it = armed_.find(id);
        if (it == armed_.end() || it->second != gen)
            return; // disarmed or re-armed since
        armed_.erase(it);
        ++expired_;
        if (journal_) {
            journal_->record(telemetry::EventType::kOpTimeout, journalNode_,
                             sim_.now(), id);
        }
        expire();
    });
}

void
DeadlineTable::bindJournal(telemetry::EventJournal *journal, sim::NodeId node)
{
    journal_ = journal;
    journalNode_ = node;
}

void
DeadlineTable::disarm(std::uint64_t id)
{
    armed_.erase(id);
}

} // namespace draid::core
