#include "core/failure.h"

#include <algorithm>
#include <utility>

namespace draid::core {

void
DeadlineTable::arm(std::uint64_t id, sim::Ticks delay,
                   std::function<void()> expire)
{
    const std::uint64_t gen = nextGen_++;
    armed_[id] = gen;
    sim_.schedule(delay, "failure.deadline",
                  [this, id, gen, expire = std::move(expire)]() {
        auto it = armed_.find(id);
        if (it == armed_.end() || it->second != gen)
            return; // disarmed or re-armed since
        armed_.erase(it);
        ++expired_;
        if (journal_) {
            journal_->record(telemetry::EventType::kOpTimeout, journalNode_,
                             sim_.now().raw(), id);
        }
        expire();
    });
}

void
DeadlineTable::bindJournal(telemetry::EventJournal *journal, sim::NodeId node)
{
    journal_ = journal;
    journalNode_ = node;
}

void
DeadlineTable::disarm(std::uint64_t id)
{
    armed_.erase(id);
}

// ---------------------------------------------------------------------------
// FailureTracker
// ---------------------------------------------------------------------------

FailureTracker::FailureTracker(std::uint32_t width, std::uint32_t redundancy)
    : width_(width), redundancy_(redundancy), failedAt_(width, -1)
{
}

void
FailureTracker::bindJournal(telemetry::EventJournal *journal,
                            sim::NodeId node)
{
    journal_ = journal;
    journalNode_ = node;
}

bool
FailureTracker::recordFailure(std::uint32_t device, sim::Ticks tick,
                              bool already_journaled)
{
    if (device >= width_ || failedAt_[device] >= 0)
        return false;
    failedAt_[device] = static_cast<std::int64_t>(tick.raw());
    ++active_;
    if (journal_ && !already_journaled) {
        journal_->record(telemetry::EventType::kDriveFailed, journalNode_,
                         tick.raw(), device, active_);
    }
    if (active_ > redundancy_ && !dataLoss_) {
        dataLoss_ = true;
        if (journal_) {
            journal_->record(telemetry::EventType::kDataLoss, journalNode_,
                             tick.raw(), device, 0);
        }
    }
    return true;
}

void
FailureTracker::recordRebuilt(std::uint32_t device, sim::Ticks tick)
{
    if (device >= width_ || failedAt_[device] < 0)
        return;
    exposure_.push_back(tick.raw() - failedAt_[device]);
    failedAt_[device] = -1;
    --active_;
}

void
FailureTracker::recordStripeLoss(std::uint64_t stripe, sim::Ticks tick)
{
    // One DataLoss record per distinct stripe keeps the journal readable
    // when a rebuild retries the same bad stripe back to back.
    const bool duplicate = lostStripes_ > 0 && stripe == lastLostStripe_;
    if (!duplicate)
        ++lostStripes_;
    lastLostStripe_ = stripe;
    dataLoss_ = true;
    if (journal_ && !duplicate) {
        journal_->record(telemetry::EventType::kDataLoss, journalNode_,
                         tick.raw(), stripe, 1);
    }
}

std::vector<std::uint32_t>
FailureTracker::failedDevices() const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t d = 0; d < width_; ++d) {
        if (failedAt_[d] >= 0)
            out.push_back(d);
    }
    return out;
}

sim::Ticks
FailureTracker::openExposure(sim::Ticks now) const
{
    sim::Ticks open;
    for (std::uint32_t d = 0; d < width_; ++d) {
        if (failedAt_[d] >= 0)
            open = std::max(open, now - sim::Ticks{failedAt_[d]});
    }
    return open;
}

} // namespace draid::core
