/**
 * @file
 * Online stripe scrubbing for DraidHost: md-style `check` / `repair`.
 *
 * Reads the whole stripe — data chunks and parity chunk(s) — through the
 * ordinary remote-read path, recomputes the expected parity with the
 * erasure-coding library, and (optionally) rewrites a mismatching parity
 * chunk. Used operationally after crash recovery (§5.4 host failures:
 * out-of-sync stripes found via the write-intent bitmap get scrubbed).
 */

#include <memory>
#include <utility>
#include <vector>

#include "core/draid_host.h"
#include "ec/raid5_codec.h"
#include "ec/raid6_codec.h"

namespace draid::core {

void
DraidHost::scrubStripe(std::uint64_t stripe, bool repair,
                       std::function<void(ScrubResult)> done)
{
    if (failed_) {
        done(ScrubResult{});
        return;
    }
    // Journal the pass outcome: b = 0 clean / 1 inconsistent / 2 repaired.
    done = [this, stripe, done = std::move(done)](ScrubResult r) {
        if (r.ok) {
            cluster_.telemetry().journal().record(
                telemetry::EventType::kScrubPass, cluster_.hostId(),
                cluster_.sim().now().raw(), stripe,
                r.repaired ? 2 : (r.consistent ? 0 : 1));
        }
        done(r);
    };
    const std::uint32_t k = geom_.dataChunks();
    const std::uint32_t chunk = geom_.chunkSize();
    const std::uint64_t addr = geom_.deviceAddress(stripe, 0);
    const bool raid6 = geom_.level() == raid::RaidLevel::kRaid6;

    struct Ctx
    {
        // draid-lint: cap(stripe width; one buffer per data chunk)
        std::vector<ec::Buffer> data;
        ec::Buffer p;
        ec::Buffer q;
        int remaining = 0;
        bool ok = true;
        // Chunk indices that could not be read (media errors): 0..k-1 =
        // data chunk, k = P, k+1 = Q.
        int failCount = 0;
        int failedIdx = -1;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->data.assign(k, ec::Buffer());
    ctx->remaining = static_cast<int>(k) + (raid6 ? 2 : 1);

    auto verify = [this, ctx, stripe, addr, repair, raid6, k,
                   done = std::move(done)]() mutable {
        if (!ctx->ok) {
            if (!repair || ctx->failCount != 1) {
                done(ScrubResult{});
                return;
            }
            // Exactly one chunk was unreadable (a latent sector error
            // surfaced by the scrub): reconstruct it from the survivors
            // and rewrite it in place, which also clears the bad range
            // on the drive.
            const int fi = ctx->failedIdx;
            ec::Buffer fix;
            std::uint32_t device;
            if (fi < static_cast<int>(k)) {
                // Data chunk: XOR of P and the surviving data chunks.
                std::vector<ec::Buffer> survivors;
                survivors.reserve(k);
                survivors.push_back(ctx->p);
                for (std::uint32_t j = 0; j < k; ++j) {
                    if (static_cast<int>(j) != fi)
                        survivors.push_back(ctx->data[j]);
                }
                fix = ec::Raid5Codec::recover(survivors);
                device = geom_.dataDevice(
                    stripe, static_cast<std::uint32_t>(fi));
            } else if (fi == static_cast<int>(k)) {
                fix = ec::Raid5Codec::computeParity(ctx->data);
                device = geom_.parityDevice(stripe);
            } else {
                ec::Buffer ep, eq;
                ec::Raid6Codec::computePQ(ctx->data, ep, eq);
                fix = std::move(eq);
                device = geom_.qDevice(stripe);
            }
            cluster_.host().cpu().executeBytes(
                fix.size(), cluster_.config().xorBw, sim::Ticks::zero(),
                [this, addr, device, fix = std::move(fix),
                 done = std::move(done)]() mutable {
                    initiator_.writeRemote(
                        targetOf(device), addr, fix,
                        [done = std::move(done)](
                            blockdev::IoStatus st) mutable {
                            done(st == blockdev::IoStatus::kOk
                                     ? ScrubResult{true, false, true}
                                     : ScrubResult{});
                        });
                });
            return;
        }
        ec::Buffer expect_p, expect_q;
        if (raid6)
            ec::Raid6Codec::computePQ(ctx->data, expect_p, expect_q);
        else
            expect_p = ec::Raid5Codec::computeParity(ctx->data);

        // Charge the verification XOR/GF work on the host core.
        const std::uint64_t bytes = geom_.stripeDataSize();
        cluster_.host().cpu().executeBytes(
            bytes, cluster_.config().xorBw, sim::Ticks::zero(),
            [this, ctx, stripe, addr, repair, raid6,
             expect_p = std::move(expect_p), expect_q = std::move(expect_q),
             done = std::move(done)]() mutable {
                const bool p_ok = ctx->p.contentEquals(expect_p);
                const bool q_ok =
                    !raid6 || ctx->q.contentEquals(expect_q);
                if (p_ok && q_ok) {
                    done(ScrubResult{true, true, false});
                    return;
                }
                if (!repair) {
                    done(ScrubResult{true, false, false});
                    return;
                }
                // Repair: rewrite whichever parity chunk mismatched.
                auto remaining = std::make_shared<int>(
                    (p_ok ? 0 : 1) + (q_ok ? 0 : 1));
                auto finish = [remaining,
                               done = std::move(done)](
                                  blockdev::IoStatus st) mutable {
                    if (st != blockdev::IoStatus::kOk) {
                        done(ScrubResult{false, false, false});
                        return;
                    }
                    if (--*remaining == 0)
                        done(ScrubResult{true, false, true});
                };
                if (!p_ok) {
                    initiator_.writeRemote(targetOf(geom_.parityDevice(stripe)),
                                           addr, expect_p, finish);
                }
                if (!q_ok) {
                    initiator_.writeRemote(targetOf(geom_.qDevice(stripe)), addr,
                                           expect_q, finish);
                }
            });
    };

    auto join = [ctx, verify](int idx, bool ok) mutable {
        if (!ok) {
            ctx->ok = false;
            ++ctx->failCount;
            ctx->failedIdx = idx;
        }
        if (--ctx->remaining == 0)
            verify();
    };

    for (std::uint32_t i = 0; i < k; ++i) {
        initiator_.readRemote(targetOf(geom_.dataDevice(stripe, i)), addr, chunk,
                              [ctx, i, join](blockdev::IoStatus st,
                                             ec::Buffer d) mutable {
                                  if (st == blockdev::IoStatus::kOk)
                                      ctx->data[i] = std::move(d);
                                  join(static_cast<int>(i),
                                       st == blockdev::IoStatus::kOk);
                              });
    }
    initiator_.readRemote(targetOf(geom_.parityDevice(stripe)), addr, chunk,
                          [ctx, k, join](blockdev::IoStatus st,
                                         ec::Buffer d) mutable {
                              if (st == blockdev::IoStatus::kOk)
                                  ctx->p = std::move(d);
                              join(static_cast<int>(k),
                                   st == blockdev::IoStatus::kOk);
                          });
    if (raid6) {
        initiator_.readRemote(targetOf(geom_.qDevice(stripe)), addr, chunk,
                              [ctx, k, join](blockdev::IoStatus st,
                                             ec::Buffer d) mutable {
                                  if (st == blockdev::IoStatus::kOk)
                                      ctx->q = std::move(d);
                                  join(static_cast<int>(k) + 1,
                                       st == blockdev::IoStatus::kOk);
                              });
    }
}

} // namespace draid::core
