/**
 * @file
 * Bandwidth-aware reconstruction (paper §6.2).
 *
 * Reducer selection for degraded reads / rebuilds. Random selection is
 * optimal for homogeneous networks (Theorem 1); with heterogeneous NICs
 * the probabilistic planner maximizes the minimum expected remaining
 * bandwidth:
 *
 *     max  min_i  R_i,   R_i = B_i - P_i (n-1) L,
 *     s.t. sum P_i = 1,  0 <= P_i <= 1
 *
 * solved exactly by water-filling. The dynamic variant replaces the known
 * load L with an EWMA of observed reconstruction load and re-solves
 * periodically.
 */

#ifndef DRAID_CORE_BW_AWARE_H
#define DRAID_CORE_BW_AWARE_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace draid::core {

/** Exponentially weighted moving average. */
class Ewma
{
  public:
    explicit Ewma(double alpha) : alpha_(alpha) {}

    /** Fold in one observation. */
    void
    update(double x)
    {
        value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
        seeded_ = true;
    }

    double value() const { return value_; }
    bool seeded() const { return seeded_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool seeded_ = false;
};

/**
 * Solve the max-min program above. @p available_bw is B_i per candidate,
 * @p load is (n-1)*L — the total extra traffic a reducer absorbs per unit
 * time. Returns the probability vector (sums to 1).
 *
 * Water-filling: the optimum equalizes R_i across every candidate with
 * P_i > 0; candidates whose B_i is at or below the water level get
 * P_i = 0. With load == 0 (or a single candidate) the split is uniform.
 */
std::vector<double> solveReducerProbabilities(
    const std::vector<double> &available_bw, double load);

/** Strategy for picking the reducer among surviving bdevs. */
class ReducerSelector
{
  public:
    virtual ~ReducerSelector() = default;

    /**
     * Pick one of @p candidates (target indices).
     * @pre candidates is non-empty
     */
    virtual std::uint32_t select(const std::vector<std::uint32_t> &candidates,
                                 sim::Rng &rng) = 0;
};

/** Uniform random choice (Theorem 1's optimum for homogeneous networks). */
class RandomReducerSelector : public ReducerSelector
{
  public:
    std::uint32_t select(const std::vector<std::uint32_t> &candidates,
                         sim::Rng &rng) override;
};

/**
 * Probability-weighted choice driven by externally supplied bandwidth
 * estimates. The owner (DraidHost) periodically feeds fresh estimates of
 * per-target available bandwidth and the EWMA reconstruction load; the
 * selector re-solves and samples from the resulting distribution.
 */
class BwAwareReducerSelector : public ReducerSelector
{
  public:
    explicit BwAwareReducerSelector(double ewma_alpha)
        : loadEwma_(ewma_alpha)
    {
    }

    /**
     * Refresh the plan.
     * @param targets       target index per entry
     * @param available_bw  B_i estimate per entry (bytes/s)
     * @param observed_load reconstruction bytes/s on the failed bdev since
     *                      the last refresh
     * @param fanin         n-1: transfers absorbed per reconstruction
     */
    void refresh(const std::vector<std::uint32_t> &targets,
                 const std::vector<double> &available_bw,
                 double observed_load, double fanin);

    std::uint32_t select(const std::vector<std::uint32_t> &candidates,
                         sim::Rng &rng) override;

    /** Current probability for a target; 0 if unplanned. */
    double probabilityOf(std::uint32_t target) const;

    double loadEstimate() const { return loadEwma_.value(); }

  private:
    Ewma loadEwma_;
    // draid-lint: cap(candidate reducers; at most cluster width)
    std::vector<std::uint32_t> targets_;
    // draid-lint: cap(parallel to targets_)
    std::vector<double> probs_;
};

} // namespace draid::core

#endif // DRAID_CORE_BW_AWARE_H
