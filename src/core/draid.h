/**
 * @file
 * dRAID public configuration and protocol conventions shared by the
 * host-side and server-side controllers.
 */

#ifndef DRAID_CORE_DRAID_H
#define DRAID_CORE_DRAID_H

#include <cstdint>

#include "raid/geometry.h"

namespace draid::core {

/** How the host picks the reducer for reconstruction (§6). */
enum class ReducerPolicy
{
    kRandom,  ///< uniform over survivors (optimal when homogeneous, Thm. 1)
    kBwAware, ///< §6.2 probabilistic max-min planner
};

/** Construction-time options of a dRAID array. */
struct DraidOptions
{
    raid::RaidLevel level = raid::RaidLevel::kRaid5;
    std::uint32_t chunkSize = 512 * 1024;

    /** §5.3 parallel I/O pipeline on the data bdevs (ablation toggle). */
    bool pipeline = true;

    /**
     * §5.2 non-blocking reduce: partial parities reduce before the Parity
     * command arrives. false inserts the barrier the paper argues against
     * (ablation toggle).
     */
    bool nonBlockingReduce = true;

    /**
     * Peer-to-peer partial-parity forwarding — the architectural core of
     * dRAID. false relays partials through the host, costing host NIC
     * bandwidth like a conventional distributed RAID (ablation toggle).
     */
    bool p2pForwarding = true;

    ReducerPolicy reducerPolicy = ReducerPolicy::kRandom;

    /** Full-stripe retries before declaring a device failed (§5.4). */
    int maxRetries = 3;

    std::uint64_t seed = 42;
};

/**
 * Wire command-id composition: high bits carry the host operation id, the
 * low byte a sub-command index. Data bdev sub-commands use their data-chunk
 * index; the values below mark parity and reducer sub-commands. Peer
 * capsules key their reduce session with the operation id.
 * @{
 */
constexpr std::uint8_t kParitySub = 0xe0;  ///< P-parity sub-command
constexpr std::uint8_t kQParitySub = 0xe1; ///< Q-parity sub-command
constexpr std::uint8_t kReducerSub = 0xe2; ///< reconstruction reducer
constexpr std::uint8_t kInitiatorSub = 0xff; ///< reserved by NvmfInitiator

constexpr std::uint64_t
makeCmdId(std::uint64_t op, std::uint8_t sub)
{
    return (op << 8) | sub;
}

constexpr std::uint64_t
opOf(std::uint64_t cmd_id)
{
    return cmd_id >> 8;
}

constexpr std::uint8_t
subOf(std::uint64_t cmd_id)
{
    return static_cast<std::uint8_t>(cmd_id & 0xff);
}
/** @} */

} // namespace draid::core

#endif // DRAID_CORE_DRAID_H
