/**
 * @file
 * Reduce-phase bookkeeping for the server-side controller (paper §5.2,
 * Algorithm 2, and the reconstruction reduce of §6.1).
 *
 * A ReduceSession collects partial results for one in-flight operation.
 * Sessions are keyed by the host operation id — the paper keys by offset,
 * which relies on the one-write-per-stripe rule; the id key additionally
 * tolerates the concurrent same-stripe *reads* enabled by the §8
 * lock-free-read optimization.
 *
 * The non-blocking multi-stage property lives here: a session is created
 * by whichever arrives first (host Parity/Reconstruction command or a
 * Peer partial), partials are reduced immediately on arrival, and only
 * the final persist/reply step waits for the host command (which carries
 * wait-num).
 *
 * The engine is pure bookkeeping plus buffer math: all I/O, CPU charging,
 * and networking is sequenced by DraidBdev, which makes the reduce logic
 * unit-testable without a cluster.
 */

#ifndef DRAID_CORE_REDUCE_ENGINE_H
#define DRAID_CORE_REDUCE_ENGINE_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ec/buffer.h"
#include "proto/opcodes.h"
#include "sim/types.h"

namespace draid::core {

/** What a reduce session produces. */
enum class SessionKind
{
    kParity,      ///< partial-stripe write: persist the reduced parity
    kReconstruct, ///< degraded read: return the reconstructed segment
};

/** One in-flight reduce operation on a bdev. */
struct ReduceSession
{
    SessionKind kind = SessionKind::kParity;
    proto::Subtype subtype = proto::Subtype::kNone;

    /** Host command seen yet? (it may arrive after peers, §5.2). */
    bool hostCmdSeen = false;

    /** Outstanding contributions: += wait-num, -1 per absorbed partial. */
    int remaining = 0;

    /** Old-parity preload (RMW) still in flight? */
    bool preloadPending = false;

    /** Accumulator in in-chunk coordinates [0, accEnd). */
    ec::Buffer acc;
    std::uint32_t accEnd = 0;

    /** Final window (from the host command): in-chunk offset + length. */
    std::uint32_t baseOffset = 0;
    std::uint32_t length = 0;

    /** Device address of the chunk start (persist location). */
    std::uint64_t chunkDeviceAddr = 0;

    /** Who to notify and under which command id. */
    sim::NodeId replyTo = sim::kInvalidNode;
    std::uint64_t hostCmdId = 0;

    /**
     * Rebuild only: node whose drive receives the reconstructed chunk
     * (peer-to-peer spare write); kInvalidNode for ordinary degraded
     * reads, whose result returns to the host.
     */
    sim::NodeId spareDest = sim::kInvalidNode;

    /** Contributions absorbed (stats/tests). */
    std::uint32_t absorbed = 0;

    /** Bytes folded into the accumulator (stats). */
    std::uint64_t bytesAbsorbed = 0;

    /** Telemetry trace id of the owning host operation (0 = untraced). */
    std::uint64_t traceId = 0;

    /**
     * Barrier-mode ablation: number of Peer partials that must be
     * stashed before reduction starts; -1 until the host command arrives.
     */
    int barrierExpect = -1;
};

/** Lifetime-aggregate reduce statistics (telemetry probes). */
struct ReduceStats
{
    std::uint64_t sessionsCreated = 0;
    std::uint64_t partialsAbsorbed = 0;
    std::uint64_t bytesAbsorbed = 0;
};

/** Session table plus the reduce arithmetic. */
class ReduceEngine
{
  public:
    /** Get or create the session for host operation @p key. */
    ReduceSession &obtain(std::uint64_t key);

    /** Look up an existing session; nullptr if absent. */
    ReduceSession *find(std::uint64_t key);

    /** Drop a finished session, folding its tallies into stats(). */
    void erase(std::uint64_t key);

    std::size_t activeSessions() const { return sessions_.size(); }

    /** Aggregates over all sessions ever created (survives erase()). */
    const ReduceStats &stats() const { return stats_; }

    /**
     * XOR @p data into the session accumulator at in-chunk offset
     * @p offset, growing the accumulator as needed, and decrement the
     * outstanding count.
     */
    static void absorb(ReduceSession &s, std::uint32_t offset,
                       const ec::Buffer &data);

    /** absorb() without touching the outstanding count (RMW preload). */
    static void absorbNoCount(ReduceSession &s, std::uint32_t offset,
                              const ec::Buffer &data);

    /**
     * Ready to persist/reply: host command processed, no outstanding
     * contributions, no preload in flight.
     */
    static bool readyToFinish(const ReduceSession &s);

    /** The final bytes [baseOffset, baseOffset+length) of the window. */
    static ec::Buffer finalWindow(const ReduceSession &s);

  private:
    // draid-lint: cap(concurrent rebuild sessions; at most one per failed device)
    std::unordered_map<std::uint64_t, ReduceSession> sessions_;
    ReduceStats stats_;
};

} // namespace draid::core

#endif // DRAID_CORE_REDUCE_ENGINE_H
