/**
 * @file
 * The dRAID host-side controller (paper §3, §5, §6).
 *
 * Exposes the virtual RAID block device. The host is a coordinator: it
 * admits one write per stripe (stripe locks with FIFO queueing), decides
 * the write mode, and orchestrates the disaggregated data path; bulk data
 * only crosses the host NIC once per user byte. Reads are lock-free (§8).
 *
 * Degraded operation, full-stripe retry on timeouts (§5.4), rebuild
 * orchestration and the bandwidth-aware reducer policy (§6.2) all live
 * here.
 */

#ifndef DRAID_CORE_DRAID_HOST_H
#define DRAID_CORE_DRAID_HOST_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "blockdev/nvmf_initiator.h"
#include "cluster/cluster.h"
#include "core/bw_aware.h"
#include "core/draid.h"
#include "core/failure.h"
#include "net/fabric.h"
#include "raid/stripe_lock.h"
#include "raid/write_plan.h"
#include "sim/rng.h"

namespace draid::core {

/** Operation counters exposed for benches and tests. */
struct HostCounters
{
    std::uint64_t fullStripeWrites = 0;
    std::uint64_t rmwWrites = 0;
    std::uint64_t rcwWrites = 0;
    std::uint64_t normalReads = 0;
    std::uint64_t degradedReads = 0;
    std::uint64_t degradedWrites = 0;
    std::uint64_t retries = 0;
    std::uint64_t failovers = 0; ///< devices declared failed by timeouts
};

/** The dRAID virtual block device. */
class DraidHost : public blockdev::BlockDevice, public net::Endpoint
{
  public:
    /**
     * Builds the host controller over all of @p cluster's targets and
     * installs itself as the host's fabric endpoint. Construct the
     * matching DraidBdev on every target (DraidSystem does both).
     *
     * @param width  member devices; defaults to every cluster target.
     *        Extra cluster targets beyond @p width can serve as spares.
     */
    DraidHost(cluster::Cluster &cluster, const DraidOptions &options,
              std::uint32_t width = 0);

    // --- BlockDevice ---
    std::uint64_t sizeBytes() const override;
    void read(std::uint64_t offset, std::uint32_t length,
              blockdev::ReadCallback cb) override;
    void write(std::uint64_t offset, ec::Buffer data,
               blockdev::WriteCallback cb) override;

    // --- Endpoint ---
    void onMessage(const net::Message &msg) override;

    // --- array management ---
    /** Declare a member device failed (enters degraded state). */
    void markFailed(std::uint32_t device);

    /** Clear the failed state (after rebuild + swap). */
    void clearFailed();

    /**
     * Swap a rebuilt spare into the array: member device @p device is
     * henceforth served by cluster target @p spare_target, and the array
     * returns to normal state. Call after RebuildJob has copied every
     * stripe's chunk onto the spare (§1: spares come from the shared
     * pool, not from pre-provisioned per-array disks).
     */
    void replaceDevice(std::uint32_t device, std::uint32_t spare_target);

    /** Cluster target currently serving member device @p device. */
    std::uint32_t
    targetOf(std::uint32_t device) const
    {
        return targetMap_[device];
    }

    bool isDegraded() const { return failed_.has_value(); }
    std::optional<std::uint32_t> failedDevice() const { return failed_; }

    /**
     * Rebuild the failed chunk of one stripe onto the drive of cluster
     * target @p spare_target (§6). The reduced result travels peer-to-peer
     * from the reducer to the spare, never through the host.
     */
    void reconstructChunk(std::uint64_t stripe, std::uint32_t spare_target,
                          std::function<void(bool)> done);

    /** Outcome of an online stripe scrub. */
    struct ScrubResult
    {
        bool ok = false;         ///< reads succeeded
        bool consistent = false; ///< parity matched the data
        bool repaired = false;   ///< parity was rewritten
    };

    /**
     * Online consistency check of one stripe (md-style `check`/`repair`):
     * reads every data and parity chunk through the normal remote path,
     * recomputes the parity, and optionally rewrites it on mismatch.
     * Requires a healthy array (scrubbing is pointless while degraded).
     */
    void scrubStripe(std::uint64_t stripe, bool repair,
                     std::function<void(ScrubResult)> done);

    const raid::Geometry &geometry() const { return geom_; }
    const DraidOptions &options() const { return opts_; }
    const HostCounters &counters() const { return counters_; }
    raid::StripeLockTable &stripeLocks() { return writeLocks_; }

    /** Non-null when reducerPolicy == kBwAware. */
    BwAwareReducerSelector *bwAwareSelector() { return bwAware_; }

  private:
    // ---- pending-operation bookkeeping ----
    struct PendingOp
    {
        // draid-lint: cap(sub-commands of one op; at most stripe width)
        std::set<std::uint8_t> waitingSubs;
        bool anyFailure = false;
        std::function<void(std::uint8_t, ec::Buffer)> onData;
        std::function<void(bool)> onDone;
    };

    std::uint64_t registerOp(std::set<std::uint8_t> subs,
                             std::function<void(std::uint8_t, ec::Buffer)>
                                 on_data,
                             std::function<void(bool)> on_done);
    void completeSub(std::uint64_t op, std::uint8_t sub, bool ok,
                     ec::Buffer payload);
    void expireOp(std::uint64_t op);

    // ---- write path ----
    struct StripeWrite
    {
        raid::StripeWritePlan plan;
        // draid-lint: cap(parallel to plan.writes; at most stripe width)
        std::vector<ec::Buffer> segData; ///< parallel to plan.writes
        int retriesLeft = 0;
        std::uint64_t traceId = 0; ///< telemetry id of the user write
        std::function<void(bool)> done;
    };

    void executeStripeWrite(std::shared_ptr<StripeWrite> sw);
    void executeFullStripe(std::shared_ptr<StripeWrite> sw);
    void executePartialStripe(std::shared_ptr<StripeWrite> sw);
    void executeParityLessWrite(std::shared_ptr<StripeWrite> sw);

    /**
     * Degraded write touching the failed chunk itself: survivors forward
     * their slices of the written range to the parity bdev(s), the host
     * contributes the new data, and the parity window absorbs the lost
     * chunk's new content — no reconstruction round-trip, no device write
     * for the lost chunk (its bytes live in parity until rebuild).
     */
    void executeDegradedTargetedWrite(std::shared_ptr<StripeWrite> sw,
                                      const raid::WriteSegment &seg,
                                      ec::Buffer data);
    void retryStripe(std::shared_ptr<StripeWrite> sw);
    void failoverFrom(const std::set<std::uint8_t> &missing,
                      std::uint64_t stripe);

    // ---- read path ----
    struct GroupExtent
    {
        raid::Extent extent;
        std::size_t outPos; ///< byte position in the user buffer
    };

    void readStripeGroup(std::uint64_t stripe,
                         std::vector<GroupExtent> extents, ec::Buffer out,
                         std::function<void(bool)> done,
                         std::uint64_t trace = 0);
    void degradedStripeRead(std::uint64_t stripe,
                            std::vector<GroupExtent> extents, ec::Buffer out,
                            std::function<void(bool)> done,
                            std::uint64_t trace = 0);

    /** Shared by degraded reads and rebuild: register + broadcast. */
    void registerAndBroadcastReconstruction(
        std::uint64_t stripe, const std::vector<std::uint32_t> &participants,
        std::uint32_t reducer, std::uint32_t recon_off,
        std::uint32_t recon_len, sim::NodeId spare_node,
        const std::vector<GroupExtent> &extents, std::uint32_t fidx,
        std::function<void(std::uint8_t, ec::Buffer)> on_data,
        std::function<void(bool)> done,
        proto::Subtype base_subtype = proto::Subtype::kNoRead,
        std::uint64_t trace = 0);

    /**
     * Read one whole data chunk, transparently reconstructing it when it
     * lives on the failed device (used by full-stripe retry).
     */
    void readChunk(std::uint64_t stripe, std::uint32_t data_idx,
                   std::function<void(bool, ec::Buffer)> cb,
                   std::uint64_t trace = 0);

    // ---- helpers ----
    void sendCapsule(std::uint32_t device, proto::Capsule capsule,
                     ec::Buffer payload);
    std::uint32_t deviceOf(const raid::Extent &e) const;

    /** Fabric node serving member device @p device. */
    sim::NodeId
    nodeOf(std::uint32_t device) const
    {
        return cluster_.targetNodeId(targetMap_[device]);
    }

    /** Reconstruction participants for @p stripe (XOR path; excludes Q). */
    std::vector<std::uint32_t> reconParticipants(std::uint64_t stripe,
                                                 std::uint32_t failed) const;

    void refreshBwPlan();
    void armBwTimer();
    void noteReconstructionLoad(std::uint64_t bytes)
    {
        reconBytesWindow_ += bytes;
        armBwTimer();
    }

    cluster::Cluster &cluster_;
    DraidOptions opts_;
    std::uint32_t width_;
    raid::Geometry geom_;
    raid::WritePlanner planner_;
    blockdev::CommandIdAllocator ids_;
    blockdev::NvmfInitiator initiator_;
    raid::StripeLockTable writeLocks_;
    DeadlineTable deadlines_;
    sim::Rng rng_;

    std::optional<std::uint32_t> failed_;
    /** Member device index -> cluster target (identity until a swap). */
    // draid-lint: cap(member device count; fixed topology)
    std::vector<std::uint32_t> targetMap_;
    // draid-lint: cap(in-flight ops; host queue depth)
    std::unordered_map<std::uint64_t, PendingOp> pending_;

    /** Sub-commands still outstanding when the last deadline fired. */
    // draid-lint: cap(sub-commands of one op; stripe width)
    std::set<std::uint8_t> lastExpiredSubs_;

    std::unique_ptr<ReducerSelector> selector_;
    BwAwareReducerSelector *bwAware_ = nullptr;
    bool bwTimerArmed_ = false;
    std::uint64_t reconBytesWindow_ = 0;
    // draid-lint: cap(one entry per cluster target; fixed topology)
    std::vector<std::uint64_t> lastTxBytes_;
    // draid-lint: cap(one entry per cluster target; fixed topology)
    std::vector<std::uint64_t> reconTxAttributed_;

    HostCounters counters_;

    /** Register host0.draid.* probes + latency histograms. */
    void setupTelemetry();

    /** Record a completed user op span + latency sample. */
    void finishOpSpan(std::uint64_t trace, const char *name, sim::Ticks start,
                      std::uint64_t bytes, telemetry::Histogram *lat_us);

    /**
     * Record the stripe-lock wait window [since, now) as a "lock" lane
     * span, so the critical-path analyzer can attribute serialization
     * behind another writer separately from queueing. No-op when the wait
     * was zero ticks (the uncontended fast path stays span-free).
     */
    void recordLockWait(std::uint64_t trace, std::uint64_t stripe,
                        sim::Ticks since);

    telemetry::Histogram *readLatencyUs_ = nullptr;
    telemetry::Histogram *writeLatencyUs_ = nullptr;

    /** Contention attribution (tenant dimension): the cluster tracker and
     *  this host's stripe-lock resource id (key = stripe). */
    telemetry::ContentionTracker *contention_ = nullptr;
    std::uint32_t lockRes_ = 0;
};

/**
 * Convenience assembly: the host controller plus a DraidBdev on every
 * target (members and spares alike).
 */
class DraidSystem
{
  public:
    DraidSystem(cluster::Cluster &cluster, const DraidOptions &options,
                std::uint32_t width = 0);
    ~DraidSystem(); // out-of-line: DraidBdev is incomplete here

    DraidHost &host() { return *host_; }
    class DraidBdev &bdev(std::uint32_t i) { return *bdevs_.at(i); }
    std::uint32_t numBdevs() const
    {
        return static_cast<std::uint32_t>(bdevs_.size());
    }

  private:
    // draid-lint: cap(one bdev per member device; fixed topology)
    std::vector<std::unique_ptr<class DraidBdev>> bdevs_;
    std::unique_ptr<DraidHost> host_;
};

} // namespace draid::core

#endif // DRAID_CORE_DRAID_HOST_H
